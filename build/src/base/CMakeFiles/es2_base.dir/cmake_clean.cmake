file(REMOVE_RECURSE
  "CMakeFiles/es2_base.dir/assert.cpp.o"
  "CMakeFiles/es2_base.dir/assert.cpp.o.d"
  "CMakeFiles/es2_base.dir/csv.cpp.o"
  "CMakeFiles/es2_base.dir/csv.cpp.o.d"
  "CMakeFiles/es2_base.dir/log.cpp.o"
  "CMakeFiles/es2_base.dir/log.cpp.o.d"
  "CMakeFiles/es2_base.dir/rng.cpp.o"
  "CMakeFiles/es2_base.dir/rng.cpp.o.d"
  "CMakeFiles/es2_base.dir/strings.cpp.o"
  "CMakeFiles/es2_base.dir/strings.cpp.o.d"
  "CMakeFiles/es2_base.dir/table.cpp.o"
  "CMakeFiles/es2_base.dir/table.cpp.o.d"
  "libes2_base.a"
  "libes2_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
