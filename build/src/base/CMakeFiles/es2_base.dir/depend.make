# Empty dependencies file for es2_base.
# This may be replaced when dependencies are built.
