file(REMOVE_RECURSE
  "libes2_base.a"
)
