
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/exit.cpp" "src/vm/CMakeFiles/es2_vm.dir/exit.cpp.o" "gcc" "src/vm/CMakeFiles/es2_vm.dir/exit.cpp.o.d"
  "/root/repo/src/vm/irq_router.cpp" "src/vm/CMakeFiles/es2_vm.dir/irq_router.cpp.o" "gcc" "src/vm/CMakeFiles/es2_vm.dir/irq_router.cpp.o.d"
  "/root/repo/src/vm/vcpu.cpp" "src/vm/CMakeFiles/es2_vm.dir/vcpu.cpp.o" "gcc" "src/vm/CMakeFiles/es2_vm.dir/vcpu.cpp.o.d"
  "/root/repo/src/vm/vm.cpp" "src/vm/CMakeFiles/es2_vm.dir/vm.cpp.o" "gcc" "src/vm/CMakeFiles/es2_vm.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/es2_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/apic/CMakeFiles/es2_apic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/es2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/es2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/es2_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
