file(REMOVE_RECURSE
  "CMakeFiles/es2_vm.dir/exit.cpp.o"
  "CMakeFiles/es2_vm.dir/exit.cpp.o.d"
  "CMakeFiles/es2_vm.dir/irq_router.cpp.o"
  "CMakeFiles/es2_vm.dir/irq_router.cpp.o.d"
  "CMakeFiles/es2_vm.dir/vcpu.cpp.o"
  "CMakeFiles/es2_vm.dir/vcpu.cpp.o.d"
  "CMakeFiles/es2_vm.dir/vm.cpp.o"
  "CMakeFiles/es2_vm.dir/vm.cpp.o.d"
  "libes2_vm.a"
  "libes2_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
