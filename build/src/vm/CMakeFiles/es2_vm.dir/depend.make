# Empty dependencies file for es2_vm.
# This may be replaced when dependencies are built.
