file(REMOVE_RECURSE
  "libes2_vm.a"
)
