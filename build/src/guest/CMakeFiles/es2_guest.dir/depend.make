# Empty dependencies file for es2_guest.
# This may be replaced when dependencies are built.
