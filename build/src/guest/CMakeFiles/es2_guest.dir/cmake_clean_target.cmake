file(REMOVE_RECURSE
  "libes2_guest.a"
)
