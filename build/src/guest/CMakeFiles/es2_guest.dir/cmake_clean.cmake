file(REMOVE_RECURSE
  "CMakeFiles/es2_guest.dir/guest_os.cpp.o"
  "CMakeFiles/es2_guest.dir/guest_os.cpp.o.d"
  "CMakeFiles/es2_guest.dir/virtio_net.cpp.o"
  "CMakeFiles/es2_guest.dir/virtio_net.cpp.o.d"
  "libes2_guest.a"
  "libes2_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
