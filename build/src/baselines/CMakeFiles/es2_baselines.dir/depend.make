# Empty dependencies file for es2_baselines.
# This may be replaced when dependencies are built.
