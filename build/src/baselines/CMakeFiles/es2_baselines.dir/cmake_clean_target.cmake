file(REMOVE_RECURSE
  "libes2_baselines.a"
)
