file(REMOVE_RECURSE
  "CMakeFiles/es2_baselines.dir/coalescer.cpp.o"
  "CMakeFiles/es2_baselines.dir/coalescer.cpp.o.d"
  "CMakeFiles/es2_baselines.dir/poll_driver.cpp.o"
  "CMakeFiles/es2_baselines.dir/poll_driver.cpp.o.d"
  "libes2_baselines.a"
  "libes2_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
