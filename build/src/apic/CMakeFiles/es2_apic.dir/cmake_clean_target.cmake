file(REMOVE_RECURSE
  "libes2_apic.a"
)
