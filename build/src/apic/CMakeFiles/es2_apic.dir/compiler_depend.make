# Empty compiler generated dependencies file for es2_apic.
# This may be replaced when dependencies are built.
