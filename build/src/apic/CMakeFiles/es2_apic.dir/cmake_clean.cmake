file(REMOVE_RECURSE
  "CMakeFiles/es2_apic.dir/lapic.cpp.o"
  "CMakeFiles/es2_apic.dir/lapic.cpp.o.d"
  "CMakeFiles/es2_apic.dir/vapic.cpp.o"
  "CMakeFiles/es2_apic.dir/vapic.cpp.o.d"
  "libes2_apic.a"
  "libes2_apic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/es2_apic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
