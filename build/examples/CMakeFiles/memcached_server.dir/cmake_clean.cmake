file(REMOVE_RECURSE
  "CMakeFiles/memcached_server.dir/memcached_server.cpp.o"
  "CMakeFiles/memcached_server.dir/memcached_server.cpp.o.d"
  "memcached_server"
  "memcached_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
