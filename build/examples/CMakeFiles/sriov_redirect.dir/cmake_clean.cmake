file(REMOVE_RECURSE
  "CMakeFiles/sriov_redirect.dir/sriov_redirect.cpp.o"
  "CMakeFiles/sriov_redirect.dir/sriov_redirect.cpp.o.d"
  "sriov_redirect"
  "sriov_redirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sriov_redirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
