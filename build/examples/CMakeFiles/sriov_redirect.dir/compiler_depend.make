# Empty compiler generated dependencies file for sriov_redirect.
# This may be replaced when dependencies are built.
