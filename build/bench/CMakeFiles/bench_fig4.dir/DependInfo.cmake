
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4.cpp" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/es2_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/es2/CMakeFiles/es2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/es2_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/es2_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/es2_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/es2_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/es2_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/apic/CMakeFiles/es2_apic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/es2_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/es2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/es2_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/es2_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
