// Unit tests for SimThread and the CFS-like scheduler.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/cfs.h"

namespace es2 {
namespace {

/// Test helper: a thread that busy-loops in fixed work units.
struct BusyThread {
  BusyThread(Simulator& sim, CfsScheduler& sched, const std::string& name,
             int core, SimDuration unit = usec(50), int weight = kWeightNice0)
      : thread(sim, name, weight) {
    thread.set_main([this, unit] { spin(unit); });
    sched.add(thread, core);
  }
  void spin(SimDuration unit) {
    ++units;
    thread.exec(unit, [] {});
  }
  SimThread thread;
  int units = 0;
};

CfsParams no_jitter() {
  CfsParams p;
  p.slice_jitter = 0.0;
  return p;
}

TEST(SimThread, ExecThenDoneRunsInOrder) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  SimThread t(sim, "t");
  std::vector<int> order;
  t.set_main([&] {
    t.exec(usec(10), [&] {
      order.push_back(1);
      t.exec(usec(10), [&] {
        order.push_back(2);
        t.block();
      });
    });
  });
  sched.add(t, 0);
  t.wake();
  sim.run_for(msec(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(t.state(), SimThread::State::kBlocked);
  EXPECT_EQ(t.cpu_time(), usec(20));
}

TEST(SimThread, WakeAfterBlockResumesMain) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  SimThread t(sim, "t");
  int runs = 0;
  t.set_main([&] {
    ++runs;
    t.exec(usec(5), [&] { t.block(); });
  });
  sched.add(t, 0);
  t.wake();
  sim.run_for(msec(1));
  EXPECT_EQ(runs, 1);
  t.wake();
  sim.run_for(msec(1));
  EXPECT_EQ(runs, 2);
}

TEST(SimThread, WakeOnRunnableIsNoOp) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  BusyThread a(sim, sched, "a", 0);
  a.thread.wake();
  sim.run_for(msec(1));
  a.thread.wake();  // already running
  sim.run_for(msec(1));
  EXPECT_EQ(a.thread.state(), SimThread::State::kRunning);
}

TEST(SimThread, SuspendAndResumeSegmentPreservesRemaining) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  SimThread t(sim, "t");
  bool finished = false;
  t.set_main([&] {
    t.exec(usec(100), [&] { finished = true; t.block(); });
  });
  sched.add(t, 0);
  t.wake();
  sim.run_for(usec(30));  // 30us into the 100us segment
  auto seg = t.suspend_active();
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->remaining, usec(70));
  EXPECT_FALSE(finished);
  t.resume_segment(std::move(*seg));
  sim.run_for(usec(71));
  EXPECT_TRUE(finished);
}

TEST(Cfs, FairSharesOnOneCore) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  std::vector<std::unique_ptr<BusyThread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(std::make_unique<BusyThread>(
        sim, sched, "t" + std::to_string(i), 0));
    threads.back()->thread.wake();
  }
  sim.run_for(sec(1));
  for (auto& t : threads) {
    EXPECT_NEAR(to_seconds(t->thread.cpu_time()), 0.25, 0.01) << t->thread.name();
  }
}

TEST(Cfs, WeightsSkewShares) {
  // A nice-19 "burn" thread should get a tiny share against a nice-0 one.
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  BusyThread heavy(sim, sched, "normal", 0, usec(50), kWeightNice0);
  BusyThread light(sim, sched, "burn", 0, usec(50), kWeightNice19);
  heavy.thread.wake();
  light.thread.wake();
  sim.run_for(sec(1));
  const double heavy_share = to_seconds(heavy.thread.cpu_time());
  const double light_share = to_seconds(light.thread.cpu_time());
  EXPECT_GT(heavy_share, 0.93);
  EXPECT_LT(light_share, 0.07);
  EXPECT_NEAR(heavy_share + light_share, 1.0, 0.01);
}

TEST(Cfs, IdleCoreRunsWakerImmediately) {
  Simulator sim;
  CfsScheduler sched(sim, 2, no_jitter());
  BusyThread a(sim, sched, "a", 1);
  const SimTime before = sim.now();
  a.thread.wake();
  sim.run_for(usec(1));
  EXPECT_EQ(a.thread.state(), SimThread::State::kRunning);
  EXPECT_LE(sim.now() - before, usec(1));
}

TEST(Cfs, PinnedThreadsStayOnTheirCore) {
  Simulator sim;
  CfsScheduler sched(sim, 2, no_jitter());
  BusyThread a(sim, sched, "a", 1);
  a.thread.wake();
  sim.run_for(msec(10));
  ASSERT_NE(a.thread.core(), nullptr);
  EXPECT_EQ(a.thread.core()->id(), 1);
}

TEST(Cfs, UnpinnedThreadPicksLeastLoadedCore) {
  Simulator sim;
  CfsScheduler sched(sim, 2, no_jitter());
  BusyThread pinned(sim, sched, "pinned", 0);
  pinned.thread.wake();
  sim.run_for(msec(1));
  BusyThread free_thread(sim, sched, "free", -1);
  free_thread.thread.wake();
  sim.run_for(msec(1));
  ASSERT_NE(free_thread.thread.core(), nullptr);
  EXPECT_EQ(free_thread.thread.core()->id(), 1);
}

TEST(Cfs, PreemptionNotifiersFireInPairs) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  BusyThread a(sim, sched, "a", 0);
  BusyThread b(sim, sched, "b", 0);
  int ins = 0, outs = 0;
  a.thread.add_notifier([&](SimThread&, bool in) { in ? ++ins : ++outs; });
  a.thread.wake();
  b.thread.wake();
  sim.run_for(msec(100));
  EXPECT_GT(ins, 5);
  // The thread is either running (ins = outs + 1) or not (ins = outs).
  EXPECT_TRUE(ins == outs || ins == outs + 1);
}

TEST(Cfs, ContextSwitchRateMatchesTimeslice) {
  // 4 equal threads on one core with 6ms latency -> 1.5ms slices
  // -> ~667 switches per second.
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  std::vector<std::unique_ptr<BusyThread>> threads;
  for (int i = 0; i < 4; ++i) {
    threads.push_back(std::make_unique<BusyThread>(
        sim, sched, "t" + std::to_string(i), 0));
    threads.back()->thread.wake();
  }
  sim.run_for(sec(1));
  const auto switches = sched.core(0).context_switches();
  EXPECT_GT(switches, 600u);
  EXPECT_LT(switches, 750u);
}

TEST(Cfs, SleeperGetsScheduledQuicklyAfterWake) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  BusyThread hog(sim, sched, "hog", 0);
  hog.thread.wake();
  sim.run_for(msec(50));

  SimThread sleeper(sim, "sleeper");
  SimTime ran_at = -1;
  sleeper.set_main([&] {
    ran_at = sim.now();
    sleeper.exec(usec(1), [&] { sleeper.block(); });
  });
  sched.add(sleeper, 0);
  const SimTime woke_at = sim.now();
  sleeper.wake();
  sim.run_for(msec(20));
  ASSERT_GE(ran_at, 0);
  // Sleeper placement must beat waiting a full rotation.
  EXPECT_LT(ran_at - woke_at, msec(2));
}

TEST(Cfs, BlockedThreadConsumesNoCpu) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  BusyThread a(sim, sched, "a", 0);
  SimThread idle(sim, "idle");
  idle.set_main([&] { idle.block(); });
  sched.add(idle, 0);
  a.thread.wake();
  sim.run_for(sec(1));
  EXPECT_EQ(idle.cpu_time(), 0);
  EXPECT_NEAR(to_seconds(a.thread.cpu_time()), 1.0, 0.01);
}

TEST(Cfs, UtilizationTracksBusyCore) {
  Simulator sim;
  CfsScheduler sched(sim, 2, no_jitter());
  BusyThread a(sim, sched, "a", 0);
  a.thread.wake();
  sim.run_for(sec(1));
  EXPECT_GT(sched.core(0).utilization(sim.now()), 0.99);
  EXPECT_LT(sched.core(1).utilization(sim.now()), 0.01);
}

TEST(Cfs, FinishRemovesThread) {
  Simulator sim;
  CfsScheduler sched(sim, 1, no_jitter());
  BusyThread a(sim, sched, "a", 0);
  BusyThread b(sim, sched, "b", 0);
  a.thread.wake();
  b.thread.wake();
  sim.run_for(msec(10));
  a.thread.finish();
  const SimDuration b_before = b.thread.cpu_time();
  sim.run_for(msec(100));
  EXPECT_EQ(a.thread.state(), SimThread::State::kFinished);
  EXPECT_NEAR(to_seconds(b.thread.cpu_time() - b_before), 0.1, 0.002);
}

TEST(Cfs, SliceJitterDesynchronizesIdenticalCores) {
  // Two cores with identical thread sets must not context-switch at the
  // same instants forever when jitter is on.
  Simulator sim(7);
  CfsParams params;  // default jitter on
  CfsScheduler sched(sim, 2, params);
  std::vector<std::unique_ptr<BusyThread>> threads;
  for (int core = 0; core < 2; ++core) {
    for (int i = 0; i < 2; ++i) {
      threads.push_back(std::make_unique<BusyThread>(
          sim, sched, "t", core));
      threads.back()->thread.wake();
    }
  }
  sim.run_for(sec(1));
  const auto s0 = sched.core(0).context_switches();
  const auto s1 = sched.core(1).context_switches();
  EXPECT_GT(s0, 100u);
  EXPECT_NE(s0, s1);  // jitter makes counts drift apart
}

}  // namespace
}  // namespace es2
