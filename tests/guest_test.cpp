// Unit tests for the guest OS model: task scheduling, IRQ dispatch, NAPI,
// the virtio-net front-end driver, and backpressure handling.
#include <gtest/gtest.h>

#include <memory>

#include "apps/burn.h"
#include "guest/guest_os.h"
#include "guest/virtio_net.h"
#include "harness/testbed.h"

namespace es2 {
namespace {

/// A task that counts its work units; optionally blocks after N units.
class TickTask final : public GuestTask {
 public:
  TickTask(GuestOs& os, int vcpu, int stop_after = -1,
           bool low_priority = false)
      : GuestTask(os, "tick", vcpu, low_priority), stop_after_(stop_after) {}

  void run_unit(Vcpu& vcpu) override {
    vcpu.guest_exec(23000 /* 10us */, [this, &vcpu] {
      ++units;
      if (stop_after_ > 0 && units >= stop_after_) block_self();
      os().task_done(vcpu);
    });
  }

  int units = 0;

 private:
  int stop_after_;
};

struct GuestWorld {
  explicit GuestWorld(int vcpus = 1, std::uint64_t seed = 1) {
    TestbedOptions o;
    o.config = Es2Config::pi();
    o.vcpus_per_vm = vcpus;
    o.cpu_burn = false;  // tests add their own tasks
    o.seed = seed;
    tb = std::make_unique<Testbed>(std::move(o));
  }
  std::unique_ptr<Testbed> tb;
  GuestOs& os() { return tb->guest(); }
};

TEST(GuestOs, IdleGuestHalts) {
  GuestWorld w;
  w.tb->start();
  // 3.5ms sits between guest timer ticks (2ms, 6ms) so the vCPU is idle.
  w.tb->sim().run_for(msec(3) + usec(500));
  EXPECT_TRUE(w.tb->tested_vm().vcpu(0).halted());
  EXPECT_GE(w.tb->tested_vm().vcpu(0).stats().count(ExitReason::kHlt), 1);
}

TEST(GuestOs, RunsAffineTaskOnly) {
  GuestWorld w(2);
  TickTask t0(w.os(), 0);
  TickTask t1(w.os(), 1);
  w.os().add_task(t0);
  w.os().add_task(t1);
  w.tb->start();
  w.tb->sim().run_for(msec(10));
  EXPECT_GT(t0.units, 100);
  EXPECT_GT(t1.units, 100);
}

TEST(GuestOs, RoundRobinsEqualTasks) {
  GuestWorld w;
  TickTask a(w.os(), 0), b(w.os(), 0);
  w.os().add_task(a);
  w.os().add_task(b);
  w.tb->start();
  w.tb->sim().run_for(msec(50));
  EXPECT_NEAR(a.units, b.units, a.units / 10 + 2);
}

TEST(GuestOs, BurnTaskYieldsToNormalTasks) {
  GuestWorld w;
  TickTask normal(w.os(), 0);
  CpuBurnTask burn(w.os(), 0);
  w.os().add_task(normal);
  w.os().add_task(burn);
  w.tb->start();
  w.tb->sim().run_for(msec(50));
  // The normal task should monopolize the vCPU (burn is idle-priority).
  EXPECT_GT(normal.units, 4000);
}

TEST(GuestOs, BurnTaskPreventsHalt) {
  GuestWorld w;
  CpuBurnTask burn(w.os(), 0);
  w.os().add_task(burn);
  w.tb->start();
  w.tb->sim().run_for(msec(20));
  EXPECT_FALSE(w.tb->tested_vm().vcpu(0).halted());
  EXPECT_EQ(w.tb->tested_vm().vcpu(0).stats().count(ExitReason::kHlt), 0);
}

TEST(GuestOs, BlockedTaskWakesViaRescheduleIpi) {
  GuestWorld w;
  TickTask t(w.os(), 0, /*stop_after=*/1);
  w.os().add_task(t);
  w.tb->start();
  w.tb->sim().run_for(msec(5));
  EXPECT_EQ(t.units, 1);
  ASSERT_TRUE(w.tb->tested_vm().vcpu(0).halted());
  t.wake();
  w.tb->sim().run_for(msec(5));
  EXPECT_EQ(t.units, 2);
}

TEST(GuestOs, UnknownFlowCounted) {
  GuestWorld w;
  w.tb->start();
  w.tb->sim().run_for(msec(1));
  Packet p;
  p.proto = Proto::kUdp;
  p.flow = 12345;
  p.payload = 64;
  p.wire_size = 118;
  w.tb->peer_to_vm().transmit(make_packet(std::move(p)));
  w.tb->sim().run_for(msec(5));
  EXPECT_EQ(w.os().packets_to_unknown_flows(), 1);
}

TEST(GuestOs, JitterStaysWithinBounds) {
  GuestWorld w;
  const Cycles base = 10000;
  for (int i = 0; i < 1000; ++i) {
    const Cycles j = w.os().jittered(base);
    EXPECT_GE(j, static_cast<Cycles>(base * (1.0 - w.os().params().cost_jitter)) - 1);
    EXPECT_LE(j, static_cast<Cycles>(base * (1.0 + w.os().params().cost_jitter)) + 1);
  }
}

// ---------------------------------------------------------------------------
// VirtioNetFrontend / NAPI
// ---------------------------------------------------------------------------

/// Sink that counts packets delivered up the stack.
class CountSink final : public FlowSink {
 public:
  void on_packet(Vcpu&, const PacketPtr&, std::function<void()> done) override {
    ++packets;
    done();
  }
  int packets = 0;
};

TEST(VirtioNet, RxRingPrePostedAtInit) {
  GuestWorld w;
  EXPECT_EQ(w.tb->backend().rx_vq().avail_count(),
            w.tb->backend().rx_vq().capacity());
  EXPECT_FALSE(w.tb->backend().rx_vq().notifications_enabled());
  EXPECT_FALSE(w.tb->backend().tx_vq().interrupts_enabled());
}

TEST(VirtioNet, RxPathDeliversToSinkViaNapi) {
  GuestWorld w;
  CpuBurnTask burn(w.os(), 0);
  w.os().add_task(burn);
  CountSink sink;
  w.os().register_flow(42, sink);
  w.tb->start();
  w.tb->sim().run_for(msec(1));
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.proto = Proto::kUdp;
    p.flow = 42;
    p.payload = 100;
    p.wire_size = 154;
    w.tb->peer_to_vm().transmit(make_packet(std::move(p)));
  }
  w.tb->sim().run_for(msec(5));
  EXPECT_EQ(sink.packets, 20);
  EXPECT_EQ(w.tb->frontend().rx_polled(), 20);
}

TEST(VirtioNet, NapiModeratesInterruptsUnderBurst) {
  GuestWorld w;
  CpuBurnTask burn(w.os(), 0);
  w.os().add_task(burn);
  CountSink sink;
  w.os().register_flow(42, sink);
  w.tb->start();
  w.tb->sim().run_for(msec(1));
  const auto irqs_before = w.tb->tested_vm().vcpu(0).irqs_taken();
  // One tight burst: NAPI should take far fewer interrupts than packets.
  for (int i = 0; i < 64; ++i) {
    Packet p;
    p.proto = Proto::kUdp;
    p.flow = 42;
    p.payload = 100;
    p.wire_size = 154;
    w.tb->peer_to_vm().transmit(make_packet(std::move(p)));
  }
  w.tb->sim().run_for(msec(10));
  EXPECT_EQ(sink.packets, 64);
  const auto irqs = w.tb->tested_vm().vcpu(0).irqs_taken() - irqs_before;
  EXPECT_LT(irqs, 20);
  EXPECT_GE(irqs, 1);
}

/// Task that transmits continuously, tracking ring-full events.
class FloodTask final : public GuestTask {
 public:
  FloodTask(GuestOs& os, VirtioNetFrontend& dev)
      : GuestTask(os, "flood", 0), dev_(dev) {}

  void run_unit(Vcpu& vcpu) override {
    Packet p;
    p.proto = Proto::kUdp;
    p.flow = 9;
    p.payload = 1000;
    p.wire_size = 1054;
    vcpu.guest_exec(1000, [this, &vcpu, p] {
      dev_.transmit(vcpu, make_packet(Packet(p)), [this, &vcpu](bool ok) {
        if (ok) {
          ++sent;
        } else {
          ++stalls;
          dev_.add_tx_waiter(*this);
          block_self();
        }
        os().task_done(vcpu);
      });
    });
  }

  VirtioNetFrontend& dev_;
  int sent = 0;
  int stalls = 0;
};

TEST(VirtioNet, TxRingFullStopsAndResumesSender) {
  GuestWorld w;
  // A sender far faster than the backend drain must fill the 256-entry
  // ring, stop, and resume on TX-completion interrupts.
  FloodTask flood(w.os(), w.tb->frontend());
  w.os().add_task(flood);
  w.tb->start();
  w.tb->sim().run_for(msec(20));
  EXPECT_GT(flood.stalls, 0);
  EXPECT_GT(flood.sent, 1000);
  EXPECT_GT(w.tb->frontend().tx_queue_stops(), 0);
  EXPECT_GT(w.tb->backend().tx_irqs(), 0);
}

TEST(VirtioNet, KicksSuppressedWhileHandlerActive) {
  GuestWorld w;
  FloodTask flood(w.os(), w.tb->frontend());
  w.os().add_task(flood);
  w.tb->start();
  w.tb->sim().run_for(msec(20));
  // Far fewer kicks than packets: event-idx suppression works.
  EXPECT_LT(w.tb->frontend().kicks(), flood.sent / 2);
}

}  // namespace
}  // namespace es2
