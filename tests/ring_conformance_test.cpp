// Differential ring-conformance suite (the packed-ring proof burden).
//
// The virtio 1.1 packed layout replaces the split layout's free-running
// avail/used indices with a single descriptor ring plus wrap counters, and
// its event suppression compares (offset, wrap) positions instead of
// monotonic indices. The claim the dataplane rests on is that the two
// layouts are *observably equivalent*: any protocol-valid operation
// sequence produces identical transfer semantics, identical kick/interrupt
// decisions, and identical completion ordering.
//
// This file pins that claim four ways:
//
//  1. a differential interpreter drives a split and a packed ring through
//     the same seeded randomized op streams, comparing every observable
//     after every op, and shrinks any failing stream to a minimal repro;
//  2. fault injection: the packed-only wrap-tear fault and the shared
//     index/descriptor faults classify identically (and wrap tears are
//     invisible to the split layout, which has no wrap counters);
//  3. whole-system streams: same-seed netperf runs over split and packed
//     rings return bit-identical results, and each layout's epoch-hash
//     series is reproducible run-to-run;
//  4. the multi-queue + busy-poll dataplane built on top: RSS steering,
//     per-queue MSI isolation, and the exit-less / adaptive poll modes.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apic/vectors.h"
#include "base/rng.h"
#include "harness/experiments.h"
#include "harness/runner.h"
#include "harness/testbed.h"
#include "metrics/metrics.h"
#include "net/packet.h"
#include "snapshot/state_hash.h"
#include "virtio/device_status.h"
#include "virtio/virtqueue.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// Differential op-stream interpreter
// ---------------------------------------------------------------------------

constexpr int kRingCapacity = 8;

// The op vocabulary mirrors how the real frontend/backend drive a ring.
// Suppression side effects are part of the op semantics: a kick wakes the
// host, which disables notifications (poll mode); an interrupt schedules
// NAPI, which masks further interrupts. Keeping those reactions inside the
// interpreter confines the streams to the protocol-valid state space —
// exactly the space the equivalence claim is scoped to (see
// StaleEventPositionsAliasOnlyInThePackedLayout for what happens outside).
enum class OpKind : int {
  kGuestAdd,      // post a buffer; deliver the kick if the protocol asks
  kHostPop,       // host takes one posted buffer
  kHostComplete,  // host completes the oldest in-flight buffer
  kGuestReap,     // guest pops one completion
  kHostSleep,     // host re-arms notifications (sleep edge, with re-check)
  kGuestNapiDone, // guest re-arms interrupts (NAPI exit, with re-check)
  kReset,         // device reset (status write 0 analogue)
};

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kGuestAdd: return "add";
    case OpKind::kHostPop: return "pop";
    case OpKind::kHostComplete: return "complete";
    case OpKind::kGuestReap: return "reap";
    case OpKind::kHostSleep: return "sleep";
    case OpKind::kGuestNapiDone: return "napi_done";
    case OpKind::kReset: return "reset";
  }
  return "?";
}

struct Op {
  OpKind kind = OpKind::kGuestAdd;
  std::uint64_t flow = 0;
  Bytes len = 0;
};

std::vector<Op> generate_ops(std::uint64_t seed, int count) {
  Rng rng = Rng::stream(seed, "ring-conformance");
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Op op;
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 30) {
      op.kind = OpKind::kGuestAdd;
    } else if (roll < 52) {
      op.kind = OpKind::kHostPop;
    } else if (roll < 74) {
      op.kind = OpKind::kHostComplete;
    } else if (roll < 88) {
      op.kind = OpKind::kGuestReap;
    } else if (roll < 93) {
      op.kind = OpKind::kHostSleep;
    } else if (roll < 98) {
      op.kind = OpKind::kGuestNapiDone;
    } else {
      op.kind = OpKind::kReset;
    }
    op.flow = rng.next_below(8);
    op.len = static_cast<Bytes>(64 + 10 * rng.next_below(32));
    ops.push_back(op);
  }
  return ops;
}

std::string entry_obs(const std::optional<Virtqueue::Entry>& e) {
  if (!e.has_value()) return " none";
  const std::uint64_t flow = e->packet != nullptr ? e->packet->flow : 0;
  return " flow=" + std::to_string(flow) + " len=" + std::to_string(e->len);
}

/// One ring plus the host's in-flight descriptor list, with an `apply`
/// that returns every observable the op exposed as a comparable string.
class RingMachine {
 public:
  explicit RingMachine(RingLayout layout)
      : vq_("conf", kRingCapacity, layout) {}

  std::string apply(const Op& op) {
    std::string obs = op_name(op.kind);
    switch (op.kind) {
      case OpKind::kGuestAdd: {
        Packet p;
        p.proto = Proto::kUdp;
        p.flow = op.flow;
        p.wire_size = op.len;
        p.payload = op.len;
        const bool ok = vq_.add_avail({make_packet(p), op.len});
        bool kick = false;
        if (ok && vq_.kick_needed()) {
          kick = true;
          vq_.disable_notifications();  // the kick woke the host: poll mode
        }
        obs += " ok=" + std::to_string(ok) + " kick=" + std::to_string(kick);
        break;
      }
      case OpKind::kHostPop: {
        std::optional<Virtqueue::Entry> e = vq_.pop_avail();
        obs += entry_obs(e);
        if (e.has_value()) in_flight_.push_back(std::move(*e));
        break;
      }
      case OpKind::kHostComplete: {
        if (in_flight_.empty()) {
          obs += " noop";
          break;
        }
        Virtqueue::Entry e = std::move(in_flight_.front());
        in_flight_.pop_front();
        vq_.push_used(std::move(e));
        bool irq = false;
        if (vq_.interrupt_needed()) {
          irq = true;
          vq_.disable_interrupts();  // hardirq schedules NAPI: masked
        }
        obs += " irq=" + std::to_string(irq);
        break;
      }
      case OpKind::kGuestReap: {
        obs += entry_obs(vq_.pop_used());
        break;
      }
      case OpKind::kHostSleep: {
        const bool race = vq_.enable_notifications();
        if (race) vq_.disable_notifications();  // re-check found work
        obs += " race=" + std::to_string(race);
        break;
      }
      case OpKind::kGuestNapiDone: {
        vq_.enable_interrupts();
        const bool race = vq_.used_count() > 0;
        if (race) vq_.disable_interrupts();  // completions raced: re-poll
        obs += " race=" + std::to_string(race);
        break;
      }
      case OpKind::kReset: {
        vq_.reset();
        in_flight_.clear();
        obs += " epoch=" + std::to_string(vq_.reset_epoch());
        break;
      }
    }
    obs += " | free=" + std::to_string(vq_.free_slots()) +
           " avail=" + std::to_string(vq_.avail_count()) +
           " used=" + std::to_string(vq_.used_count()) +
           " inflight=" + std::to_string(vq_.in_flight()) +
           " added=" + std::to_string(vq_.total_added()) +
           " done=" + std::to_string(vq_.total_used()) +
           " notif=" + std::to_string(vq_.notifications_enabled()) +
           " irqs=" + std::to_string(vq_.interrupts_enabled()) +
           " healthy=" +
           std::to_string(vq_.check_integrity() == RingFault::kNone);
    return obs;
  }

 private:
  Virtqueue vq_;
  std::deque<Virtqueue::Entry> in_flight_;
};

struct DiffResult {
  int first_divergence = -1;  // -1: fully conformant
  std::string split_obs;
  std::string packed_obs;
};

DiffResult run_differential(const std::vector<Op>& ops) {
  RingMachine split(RingLayout::kSplit);
  RingMachine packed(RingLayout::kPacked);
  DiffResult r;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::string a = split.apply(ops[i]);
    const std::string b = packed.apply(ops[i]);
    if (a != b) {
      r.first_divergence = static_cast<int>(i);
      r.split_obs = a;
      r.packed_obs = b;
      return r;
    }
  }
  return r;
}

/// Greedy chunk-removal shrinking: delete the largest spans that keep the
/// divergence alive, halving the chunk size down to single ops.
std::vector<Op> shrink_divergence(std::vector<Op> ops) {
  for (std::size_t chunk = std::max<std::size_t>(ops.size() / 2, 1);;
       chunk /= 2) {
    bool removed = true;
    while (removed) {
      removed = false;
      for (std::size_t start = 0; start + chunk <= ops.size();) {
        std::vector<Op> candidate;
        candidate.reserve(ops.size() - chunk);
        candidate.insert(candidate.end(), ops.begin(),
                         ops.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(
            candidate.end(),
            ops.begin() + static_cast<std::ptrdiff_t>(start + chunk),
            ops.end());
        if (run_differential(candidate).first_divergence >= 0) {
          ops = std::move(candidate);
          removed = true;
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  return ops;
}

class RingConformance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingConformance, SplitAndPackedAgreeOnSeededOpStreams) {
  const std::vector<Op> ops = generate_ops(GetParam(), 400);
  const DiffResult r = run_differential(ops);
  if (r.first_divergence < 0) return;
  const std::vector<Op> minimal = shrink_divergence(ops);
  const DiffResult m = run_differential(minimal);
  std::string repro;
  for (const Op& op : minimal) {
    repro += std::string("  {") + op_name(op.kind) +
             ", flow=" + std::to_string(op.flow) +
             ", len=" + std::to_string(op.len) + "}\n";
  }
  FAIL() << "split/packed divergence (seed " << GetParam() << ") at op "
         << m.first_divergence << ":\n  split:  " << m.split_obs
         << "\n  packed: " << m.packed_obs << "\nminimal repro ("
         << minimal.size() << " ops):\n"
         << repro;
}

INSTANTIATE_TEST_SUITE_P(SeededStreams, RingConformance,
                         ::testing::Range<std::uint64_t>(1, 25));

// The equivalence is scoped to protocol-valid streams: an event position
// left stale for a full wrap cycle aliases in the packed layout (positions
// repeat mod 2*capacity) where the split layout's monotonic indices never
// do. Real drivers keep the event fresh — the interpreter above services
// every kick — but the boundary itself is worth pinning: it documents why
// the conformance harness models the host/guest reactions.
TEST(RingConformanceBoundary, StaleEventPositionsAliasOnlyInThePackedLayout) {
  int split_kicks = 0;
  int packed_kicks = 0;
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    Virtqueue vq("stale", kRingCapacity, layout);
    int kicks = 0;
    // Cycle one descriptor at a time with the host never re-arming: the
    // event position stays at 0 while the ring wraps twice.
    for (int i = 0; i < 2 * kRingCapacity + 1; ++i) {
      ASSERT_TRUE(vq.add_avail({nullptr, 64}));
      if (vq.kick_needed()) ++kicks;
      auto e = vq.pop_avail();
      ASSERT_TRUE(e.has_value());
      vq.push_used(*e);
      ASSERT_TRUE(vq.pop_used().has_value());
    }
    (layout == RingLayout::kSplit ? split_kicks : packed_kicks) = kicks;
  }
  EXPECT_EQ(split_kicks, 1);   // only the first add crosses the event
  EXPECT_EQ(packed_kicks, 2);  // ...plus its alias one wrap cycle later
}

// ---------------------------------------------------------------------------
// Suppression protocol, deterministic cases
// ---------------------------------------------------------------------------

TEST(Suppression, FirstAddAfterRearmKicksExactlyOnceOnBothLayouts) {
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    SCOPED_TRACE(layout == RingLayout::kSplit ? "split" : "packed");
    Virtqueue vq("tx", kRingCapacity, layout);
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    EXPECT_TRUE(vq.kick_needed());
    vq.disable_notifications();  // host woke up and polls
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    EXPECT_FALSE(vq.kick_needed());
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    EXPECT_FALSE(vq.kick_needed());
    // Host drains everything and goes back to sleep.
    while (auto e = vq.pop_avail()) vq.push_used(*e);
    while (vq.pop_used().has_value()) {
    }
    EXPECT_FALSE(vq.enable_notifications());
    // The next add crosses the freshly-armed event on both layouts.
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    EXPECT_TRUE(vq.kick_needed());
  }
}

TEST(Suppression, InterruptRearmMirrorsTheKickProtocolOnBothLayouts) {
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    SCOPED_TRACE(layout == RingLayout::kSplit ? "split" : "packed");
    Virtqueue vq("rx", kRingCapacity, layout);
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    auto e = vq.pop_avail();
    ASSERT_TRUE(e.has_value());
    vq.push_used(*e);
    EXPECT_TRUE(vq.interrupt_needed());
    vq.disable_interrupts();  // NAPI scheduled
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    e = vq.pop_avail();
    ASSERT_TRUE(e.has_value());
    vq.push_used(*e);
    EXPECT_FALSE(vq.interrupt_needed());  // masked while polling
    while (vq.pop_used().has_value()) {
    }
    vq.enable_interrupts();  // NAPI drained, re-armed
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    e = vq.pop_avail();
    ASSERT_TRUE(e.has_value());
    vq.push_used(*e);
    EXPECT_TRUE(vq.interrupt_needed());
  }
}

TEST(Suppression, DecisionSequencesAgreeAcrossThreeWrapCycles) {
  const int kCapacity = 4;
  std::string traces[2];
  int t = 0;
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    Virtqueue vq("wrap", kCapacity, layout);
    std::string trace;
    for (int i = 0; i < 3 * 2 * kCapacity; ++i) {
      ASSERT_TRUE(vq.add_avail({nullptr, 64}));
      if (vq.kick_needed()) {
        trace += 'K';
        vq.disable_notifications();
      }
      auto e = vq.pop_avail();
      ASSERT_TRUE(e.has_value());
      vq.push_used(*e);
      if (vq.interrupt_needed()) {
        trace += 'I';
        vq.disable_interrupts();
      }
      ASSERT_TRUE(vq.pop_used().has_value());
      if (i % 3 == 2) {
        if (vq.enable_notifications()) vq.disable_notifications();
        vq.enable_interrupts();
        trace += 'R';
      }
      EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
    }
    EXPECT_GT(vq.total_added(), 3 * kCapacity);  // wrapped at least thrice
    traces[t++] = trace;
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_NE(traces[0].find('K'), std::string::npos);
  EXPECT_NE(traces[0].find('I'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault-classification conformance
// ---------------------------------------------------------------------------

TEST(RingFaultConformance, WrapTearIsAPackedOnlyFault) {
  Virtqueue packed("tx", kRingCapacity, RingLayout::kPacked);
  packed.inject_wrap_tear();
  EXPECT_EQ(packed.check_integrity(), RingFault::kBadWrapCounter);
  // The split layout has no wrap counters; the same injection is inert.
  Virtqueue split("tx", kRingCapacity, RingLayout::kSplit);
  split.inject_wrap_tear();
  EXPECT_EQ(split.check_integrity(), RingFault::kNone);
}

TEST(RingFaultConformance, WrapTearIsDetectedAcrossWrapBoundaries) {
  Virtqueue vq("tx", 4, RingLayout::kPacked);
  // Advance past one wrap so the healthy wrap phase is the flipped one.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    auto e = vq.pop_avail();
    ASSERT_TRUE(e.has_value());
    vq.push_used(*e);
    ASSERT_TRUE(vq.pop_used().has_value());
  }
  EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
  vq.inject_wrap_tear();
  EXPECT_EQ(vq.check_integrity(), RingFault::kBadWrapCounter);
}

TEST(RingFaultConformance, IndexTearOutranksTheWrapCounterCrossCheck) {
  // A torn avail index also desynchronizes the wrap phase; it must still
  // classify as the index tear (detection order: accounting before wrap).
  Virtqueue vq("tx", kRingCapacity, RingLayout::kPacked);
  vq.inject_avail_tear();
  EXPECT_EQ(vq.check_integrity(), RingFault::kAvailIdxTorn);
}

TEST(RingFaultConformance, SharedFaultsClassifyIdenticallyOnBothLayouts) {
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    SCOPED_TRACE(layout == RingLayout::kSplit ? "split" : "packed");
    Virtqueue torn("a", kRingCapacity, layout);
    torn.inject_avail_tear();
    EXPECT_EQ(torn.check_integrity(), RingFault::kAvailIdxTorn);
    Virtqueue overrun("b", kRingCapacity, layout);
    overrun.inject_used_overrun();
    EXPECT_EQ(overrun.check_integrity(), RingFault::kUsedOverrun);
    Virtqueue dup("c", kRingCapacity, layout);
    dup.inject_duplicate_head();
    EXPECT_EQ(dup.check_integrity(), RingFault::kDuplicateHead);
  }
}

TEST(RingFaultConformance, ResetClearsAWrapTearAndRestoresThePhase) {
  Virtqueue vq("tx", kRingCapacity, RingLayout::kPacked);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(vq.add_avail({nullptr, 64}));
  vq.inject_wrap_tear();
  vq.flag_fault(vq.check_integrity());
  EXPECT_EQ(vq.pending_fault(), RingFault::kBadWrapCounter);
  const std::int64_t epoch = vq.reset_epoch();
  vq.reset();
  EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
  EXPECT_EQ(vq.pending_fault(), RingFault::kNone);
  EXPECT_EQ(vq.reset_epoch(), epoch + 1);
  // The ring is fully serviceable again, wrap phase included.
  ASSERT_TRUE(vq.add_avail({nullptr, 64}));
  EXPECT_TRUE(vq.kick_needed());
  auto e = vq.pop_avail();
  ASSERT_TRUE(e.has_value());
  vq.push_used(*e);
  EXPECT_TRUE(vq.interrupt_needed());
  EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
}

TEST(RingFaultConformance, BadWrapCounterHasAStableLadderName) {
  EXPECT_STREQ(ring_fault_name(RingFault::kBadWrapCounter),
               "bad_wrap_counter");
}

// ---------------------------------------------------------------------------
// Whole-system conformance: netperf streams over both layouts
// ---------------------------------------------------------------------------

StreamOptions dataplane_stream(RingLayout layout) {
  StreamOptions o;
  o.config = Es2Config::pi_h_r();
  o.ring_layout = layout;
  o.warmup = msec(50);
  o.measure = msec(200);
  return o;
}

void expect_identical(const StreamResult& split, const StreamResult& packed) {
  EXPECT_EQ(split.throughput_mbps, packed.throughput_mbps);
  EXPECT_EQ(split.packets_per_sec, packed.packets_per_sec);
  EXPECT_EQ(split.kicks_per_sec, packed.kicks_per_sec);
  EXPECT_EQ(split.guest_irqs_per_sec, packed.guest_irqs_per_sec);
  EXPECT_EQ(split.rx_dropped, packed.rx_dropped);
  EXPECT_EQ(split.link_dropped, packed.link_dropped);
  EXPECT_EQ(split.exits.total, packed.exits.total);
  EXPECT_GT(split.packets_per_sec, 0.0);
}

TEST(DataplaneConformance, TcpStreamResultsAreLayoutInvariant) {
  const StreamResult split = run_stream(dataplane_stream(RingLayout::kSplit));
  const StreamResult packed =
      run_stream(dataplane_stream(RingLayout::kPacked));
  expect_identical(split, packed);
}

TEST(DataplaneConformance, UdpPeerToVmStreamResultsAreLayoutInvariant) {
  StreamOptions split_opts = dataplane_stream(RingLayout::kSplit);
  split_opts.proto = Proto::kUdp;
  split_opts.vm_sends = false;
  StreamOptions packed_opts = split_opts;
  packed_opts.ring_layout = RingLayout::kPacked;
  expect_identical(run_stream(split_opts), run_stream(packed_opts));
}

TEST(DataplaneConformance, SameSeedHashSeriesRepeatPerLayout) {
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    SCOPED_TRACE(layout == RingLayout::kSplit ? "split" : "packed");
    StreamOptions o = dataplane_stream(layout);
    o.snapshot.hash_epochs = true;
    o.snapshot.epoch = msec(10);
    const StreamResult a = run_stream(o);
    const StreamResult b = run_stream(o);
    ASSERT_NE(a.hashes, nullptr);
    ASSERT_NE(b.hashes, nullptr);
    EXPECT_GT(a.hashes->entries.size(), 5u);
    const Divergence d = find_divergence(*a.hashes, *b.hashes);
    EXPECT_EQ(d.epoch, -1) << d.detail;
  }
}

// ---------------------------------------------------------------------------
// Multi-queue: RSS steering, per-queue MSI isolation
// ---------------------------------------------------------------------------

TestbedOptions mq_testbed(int pairs, RingLayout layout = RingLayout::kSplit) {
  TestbedOptions o;
  o.config = Es2Config::pi_h_r();
  o.vhost_params.num_queue_pairs = pairs;
  o.vhost_params.ring_layout = layout;
  return o;
}

TEST(MultiQueue, RssHashIsDeterministicAndMixesFlows) {
  EXPECT_EQ(rss_hash(Proto::kTcp, 42), rss_hash(Proto::kTcp, 42));
  EXPECT_NE(rss_hash(Proto::kTcp, 42), rss_hash(Proto::kUdp, 42));
  std::set<std::uint32_t> hashes;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    hashes.insert(rss_hash(Proto::kTcp, flow));
  }
  EXPECT_GE(hashes.size(), 60u);  // FNV-1a over 64 flows: ~no collisions
}

TEST(MultiQueue, SteeringMatchesRssHashAndCoversEveryPair) {
  Testbed tb(mq_testbed(4));
  std::set<int> pairs_hit;
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const int pair = tb.backend().steer_pair(Proto::kTcp, flow);
    EXPECT_EQ(pair, static_cast<int>(rss_hash(Proto::kTcp, flow) % 4));
    pairs_hit.insert(pair);
  }
  EXPECT_EQ(pairs_hit.size(), 4u);
  // Feature negotiation advertised MQ and the driver acked it.
  EXPECT_NE(tb.backend().features_acked() & kFeatureMq, 0u);
}

TEST(MultiQueue, SingleQueueDevicesSteerEverythingToPairZero) {
  Testbed tb(mq_testbed(1));
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    EXPECT_EQ(tb.backend().steer_pair(Proto::kUdp, flow), 0);
  }
  EXPECT_EQ(tb.backend().features_acked() & kFeatureMq, 0u);
}

TEST(MultiQueue, PerQueueMsiVectorsAreDistinctAndDriverOwned) {
  Testbed tb(mq_testbed(4));
  std::set<Vector> vectors;
  for (int pair = 0; pair < 4; ++pair) {
    const Vector tx = tb.backend().tx_msi(pair).vector;
    const Vector rx = tb.backend().rx_msi(pair).vector;
    vectors.insert(tx);
    vectors.insert(rx);
    EXPECT_TRUE(tb.frontend().owns_vector(tx)) << "pair " << pair;
    EXPECT_TRUE(tb.frontend().owns_vector(rx)) << "pair " << pair;
  }
  EXPECT_EQ(vectors.size(), 8u);  // no vector shared between queues
}

TEST(MultiQueue, RssSteeringDeliversOnlyToTheSteeredPairsRings) {
  Testbed tb(mq_testbed(4));
  tb.start();
  tb.sim().run_for(msec(2));  // boot settles, RX rings pre-posted
  // A flow that steers away from pair 0, to prove non-default routing.
  std::uint64_t flow = 0;
  while (tb.backend().steer_pair(Proto::kUdp, flow) == 0) ++flow;
  const int steered = tb.backend().steer_pair(Proto::kUdp, flow);
  std::int64_t before[4];
  for (int p = 0; p < 4; ++p) before[p] = tb.backend().rx_vq(p).total_used();
  const int kPackets = 16;
  for (int i = 0; i < kPackets; ++i) {
    Packet p;
    p.proto = Proto::kUdp;
    p.flow = flow;
    p.wire_size = 154;
    p.payload = 100;
    p.seq = static_cast<std::uint64_t>(i);
    tb.backend().receive_from_wire(make_packet(p));
  }
  tb.sim().run_for(msec(10));
  for (int p = 0; p < 4; ++p) {
    const std::int64_t delivered = tb.backend().rx_vq(p).total_used() - before[p];
    if (p == steered) {
      EXPECT_EQ(delivered, kPackets) << "steered pair " << p;
    } else {
      EXPECT_EQ(delivered, 0) << "cross-queue leakage into pair " << p;
    }
  }
}

TEST(MultiQueue, TcpStreamSpreadsThreadsAcrossQueuePairs) {
  StreamOptions o = dataplane_stream(RingLayout::kSplit);
  o.threads = 6;
  o.num_queue_pairs = 4;
  const StreamResult res = run_stream(o);
  EXPECT_GT(res.packets_per_sec, 0.0);
  // Stream thread t sends flow 100 + t; XPS pins each flow's TX traffic
  // to its RSS pair, so exactly the steered pairs' TX rings move.
  std::set<int> expected;
  for (std::uint64_t t = 0; t < 6; ++t) {
    expected.insert(static_cast<int>(rss_hash(Proto::kTcp, 100 + t) % 4));
  }
  EXPECT_GE(expected.size(), 2u);
  for (int pair = 0; pair < 4; ++pair) {
    const std::string vq_name =
        pair == 0 ? "vm0/txq" : "vm0/txq" + std::to_string(pair);
    const double added = res.metrics->value(
        metric_key("virtio.vq.added", {{"vm", "vm0"}, {"vq", vq_name}}), -1);
    ASSERT_GE(added, 0.0) << "missing instrument for " << vq_name;
    if (expected.count(pair) != 0) {
      EXPECT_GT(added, 0.0) << "steered pair " << pair << " idle";
    } else {
      EXPECT_EQ(added, 0.0) << "unsteered pair " << pair << " moved";
    }
  }
}

// ---------------------------------------------------------------------------
// Busy-poll worker modes
// ---------------------------------------------------------------------------

TEST(BusyPoll, AlwaysPollRunsTheStreamExitLess) {
  StreamOptions o = dataplane_stream(RingLayout::kSplit);
  o.poll_mode = PollMode::kAlwaysPoll;
  const StreamResult res = run_stream(o);
  EXPECT_GT(res.packets_per_sec, 0.0);
  EXPECT_GT(res.throughput_mbps, 0.0);
  // Notifications are permanently disabled: the guest never kicks.
  EXPECT_EQ(res.kicks_per_sec, 0.0);
  const double harvests = res.metrics->value(
      metric_key("vhost.worker.poll_harvests", {{"worker", "vhost-vm0"}}), -1);
  const double spins = res.metrics->value(
      metric_key("vhost.worker.poll_spins", {{"worker", "vhost-vm0"}}), -1);
  EXPECT_GT(harvests, 0.0);
  EXPECT_GE(spins, 0.0);
}

TEST(BusyPoll, AlwaysPollResultsAreLayoutInvariant) {
  StreamOptions split_opts = dataplane_stream(RingLayout::kSplit);
  split_opts.poll_mode = PollMode::kAlwaysPoll;
  StreamOptions packed_opts = split_opts;
  packed_opts.ring_layout = RingLayout::kPacked;
  expect_identical(run_stream(split_opts), run_stream(packed_opts));
}

TEST(BusyPoll, PollCountersStayOutOfTheNotifyModeInstrumentSet) {
  // The frozen instrument set of stock notify-mode runs must not grow.
  const StreamResult res = run_stream(dataplane_stream(RingLayout::kSplit));
  EXPECT_EQ(res.metrics->value(
                metric_key("vhost.worker.poll_spins", {{"worker", "vhost-vm0"}}),
                -1),
            -1);
}

TEST(BusyPoll, AdaptivePollKicksBetweenAlwaysPollAndNotify) {
  // VM-sends TCP keeps the guest kicking in notify mode. The adaptive
  // worker only re-arms notifications at its sleep edges (idle longer
  // than the 50us budget), so its kick rate sits between the exit-less
  // always-poll discipline (zero) and stock notify mode (the most).
  const StreamOptions base = dataplane_stream(RingLayout::kSplit);
  double kicks[3];
  double pps[3];
  int i = 0;
  for (const PollMode mode :
       {PollMode::kAlwaysPoll, PollMode::kAdaptive, PollMode::kNotify}) {
    StreamOptions o = base;
    o.poll_mode = mode;
    const StreamResult res = run_stream(o);
    kicks[i] = res.kicks_per_sec;
    pps[i] = res.packets_per_sec;
    if (mode == PollMode::kAdaptive) {
      // The adaptive worker did spend time in its polling discipline.
      EXPECT_GT(res.metrics->value(metric_key("vhost.worker.poll_harvests",
                                              {{"worker", "vhost-vm0"}}),
                                   -1),
                0.0);
    }
    ++i;
  }
  EXPECT_EQ(kicks[0], 0.0);       // always-poll: exit-less
  EXPECT_GT(kicks[2], 0.0);       // notify: kick-driven
  EXPECT_LT(kicks[1], kicks[2]);  // adaptive suppresses kicks while polling
  // Every discipline moves the stream.
  EXPECT_GT(pps[0], 0.0);
  EXPECT_GT(pps[1], 0.0);
  EXPECT_GT(pps[2], 0.0);
}

// ---------------------------------------------------------------------------
// Concurrency sweep (tsan coverage for the busy-poll spin + MQ handlers)
// ---------------------------------------------------------------------------

TEST(DataplaneSweep, LayoutPollMatrixRunsConcurrently) {
  ExperimentRunner runner(4);
  for (const RingLayout layout : {RingLayout::kSplit, RingLayout::kPacked}) {
    for (const PollMode mode :
         {PollMode::kNotify, PollMode::kAlwaysPoll, PollMode::kAdaptive}) {
      const std::string name =
          std::string(layout == RingLayout::kSplit ? "split" : "packed") +
          "/" + poll_mode_name(mode);
      runner.add(name, [layout, mode](const std::string& cell) {
        StreamOptions o;
        o.config = Es2Config::pi_h_r();
        o.ring_layout = layout;
        o.poll_mode = mode;
        o.num_queue_pairs = 2;
        o.threads = 2;
        o.warmup = msec(20);
        o.measure = msec(100);
        const StreamResult res = run_stream(o);
        ScenarioReport r;
        r.name = cell;
        if (res.packets_per_sec <= 0.0) {
          r.status = ScenarioStatus::kException;
          r.detail = "no packets delivered";
        }
        if (mode == PollMode::kAlwaysPoll && res.kicks_per_sec != 0.0) {
          r.status = ScenarioStatus::kException;
          r.detail = "always-poll cell executed guest kicks";
        }
        return r;
      });
    }
  }
  runner.run_all();
  EXPECT_TRUE(runner.all_ok());
  runner.print_failures(stderr);
  EXPECT_EQ(runner.reports().size(), 6u);
}

}  // namespace
}  // namespace es2
