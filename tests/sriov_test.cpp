// Unit tests for the direct-assignment (SR-IOV VF) device model (§VII).
#include <gtest/gtest.h>

#include <memory>

#include "es2/es2.h"
#include "es2/sriov.h"
#include "vm/vm.h"

namespace es2 {
namespace {

class VfGuest final : public GuestCpu {
 public:
  VfGuest(Vm& vm, DirectNic& nic) : vm_(vm), nic_(nic) { vm.set_guest(this); }

  void run(int i) override {
    vm_.vcpu(i).guest_exec(115000, [this, i] { run(i); });
  }

  void take_interrupt(int i, Vector) override {
    ++irqs;
    Vcpu& vcpu = vm_.vcpu(i);
    vcpu.guest_exec(2000, [this, &vcpu] {
      while (nic_.rx_pending()) {
        received.push_back(nic_.pop_rx());
      }
      vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
    });
  }

  Vm& vm_;
  DirectNic& nic_;
  int irqs = 0;
  std::vector<PacketPtr> received;
};

struct VfWorld {
  VfWorld()
      : sim(1),
        host(sim, 4),
        vm(host.create_vm("vf-vm", {0}, InterruptVirtMode::kPostedInterrupt)),
        link(sim, 40.0, 1000),
        nic(vm, link),
        guest(vm, nic) {
    vm.set_timer_hz(0);
    link.set_receiver([this](PacketPtr p) { wire.push_back(std::move(p)); });
  }
  Simulator sim;
  KvmHost host;
  Vm& vm;
  Link link;
  DirectNic nic;
  VfGuest guest;
  std::vector<PacketPtr> wire;
};

PacketPtr probe(std::uint64_t id) {
  Packet p;
  p.proto = Proto::kUdp;
  p.flow = 1;
  p.payload = 64;
  p.wire_size = 118;
  p.probe_id = id;
  return make_packet(std::move(p));
}

TEST(DirectNic, TransmitBypassesAllExits) {
  VfWorld w;
  w.vm.start();
  w.sim.run_for(msec(1));
  w.vm.begin_stats_window();
  // Transmit from guest context via an injected interrupt-free path: use
  // the guest's run loop indirectly by calling from an event at a point
  // the vCPU is in guest mode. Simplest: deliver through the public API
  // from a fake task — here we call transmit inside an interrupt handler
  // via ingress, so instead verify the exit-free property on RX+TX combo.
  w.nic.receive_from_wire(probe(1));
  w.sim.run_for(msec(1));
  const ExitStats stats = w.vm.aggregate_stats();
  EXPECT_EQ(stats.count(ExitReason::kIoInstruction), 0);
  EXPECT_EQ(stats.count(ExitReason::kExternalInterrupt), 0);
  EXPECT_EQ(stats.count(ExitReason::kApicAccess), 0);
  EXPECT_EQ(w.guest.irqs, 1);
  ASSERT_EQ(w.guest.received.size(), 1u);
  EXPECT_EQ(w.guest.received[0]->probe_id, 1u);
}

TEST(DirectNic, RxQueueBoundsAndDrops) {
  VfWorld w;  // VM not started: nothing drains the queue
  const int depth = 1024;
  for (int i = 0; i < depth + 5; ++i) {
    w.nic.receive_from_wire(probe(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(w.nic.rx_packets(), depth);
  EXPECT_EQ(w.nic.rx_dropped(), 5);
}

TEST(DirectNic, InterruptsGoThroughRouterForRedirection) {
  Simulator sim(1);
  KvmHost host(sim, 4);
  Vm& vm = host.create_vm("vf", {0, 1}, InterruptVirtMode::kPostedInterrupt);
  vm.set_timer_hz(0);
  Link link(sim, 40.0, 1000);
  link.set_receiver([](PacketPtr) {});
  DirectNic nic(vm, link);
  VfGuest guest(vm, nic);
  int intercepted = 0;
  host.router().set_interceptor([&](Vm&, const MsiMessage& m) {
    EXPECT_EQ(m.vector, nic.rx_msi().vector);
    ++intercepted;
    return 1;  // repoint at vCPU 1
  });
  vm.start();
  sim.run_for(msec(1));
  nic.receive_from_wire(probe(9));
  sim.run_for(msec(1));
  EXPECT_EQ(intercepted, 1);
  EXPECT_EQ(host.router().redirected(), 1);
  EXPECT_EQ(guest.irqs, 1);
}

TEST(DirectNic, GuestTransmitReachesWire) {
  VfWorld w;
  w.vm.start();
  w.sim.run_for(msec(1));
  // Drive a transmit from guest context: piggyback on the irq handler.
  class TxOnIrq final : public GuestCpu {
   public:
    TxOnIrq(Vm& vm, DirectNic& nic) : vm_(vm), nic_(nic) { vm.set_guest(this); }
    void run(int i) override {
      vm_.vcpu(i).guest_exec(115000, [this, i] { run(i); });
    }
    void take_interrupt(int i, Vector) override {
      Vcpu& vcpu = vm_.vcpu(i);
      while (nic_.rx_pending()) nic_.pop_rx();
      nic_.transmit(vcpu, probe(77), [&vcpu] {
        vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
      });
    }
    Vm& vm_;
    DirectNic& nic_;
  } guest(w.vm, w.nic);
  w.nic.receive_from_wire(probe(1));
  w.sim.run_for(msec(1));
  ASSERT_EQ(w.wire.size(), 1u);
  EXPECT_EQ(w.wire[0]->probe_id, 77u);
  EXPECT_EQ(w.nic.tx_packets(), 1);
}

}  // namespace
}  // namespace es2
