// Unit tests for src/base: RNG, strings, table, csv, units.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/csv.h"
#include "base/rng.h"
#include "base/strings.h"
#include "base/table.h"
#include "base/units.h"

namespace es2 {
namespace {

TEST(Units, CyclesToNs) {
  EXPECT_EQ(cycles_to_ns(0, 2.3), 0);
  EXPECT_EQ(cycles_to_ns(2300, 2.3), 1000);
  EXPECT_EQ(cycles_to_ns(1, 2.3), 1);  // floor of 1ns for nonzero work
  EXPECT_EQ(cycles_to_ns(-5, 2.3), 0);
}

TEST(Units, Conversions) {
  EXPECT_EQ(usec(3), 3000);
  EXPECT_EQ(msec(2), 2'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(mbps(125'000, kSecond), 1.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a = Rng::stream(42, "alpha");
  Rng b = Rng::stream(42, "beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BernoulliEdges) {
  Rng r(1);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng r(123);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalClampsNonNegative) {
  Rng r(55);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal(1.0, 3.0, /*nonneg=*/true), 0.0);
  }
}

TEST(Rng, StateRestoreResumesEveryNamedStream) {
  // Every stream label the model derives (checkpoint coverage): a stream
  // restored from state() must replay exactly the draws the original
  // would have produced, for each label and across draw types.
  const char* labels[] = {"fault",        "redirector", "memaslap",
                          "cfs",          "guest/vm0",  "vhost/vm0",
                          "vhost-worker/vhost-vm0"};
  for (const char* label : labels) {
    Rng rng = Rng::stream(42, label);
    // Burn a prefix so the saved state is mid-sequence, not the seed.
    for (int i = 0; i < 17; ++i) (void)rng.next_u64();
    const Rng::State saved = rng.state();

    std::vector<std::uint64_t> raw;
    std::vector<double> doubles;
    for (int i = 0; i < 32; ++i) raw.push_back(rng.next_u64());
    for (int i = 0; i < 8; ++i) doubles.push_back(rng.exponential(2.0));

    Rng restored(999);  // wrong seed on purpose; restore must overwrite it
    restored.restore(saved);
    for (std::uint64_t v : raw) {
      EXPECT_EQ(restored.next_u64(), v) << "label " << label;
    }
    for (double v : doubles) {
      EXPECT_EQ(restored.exponential(2.0), v) << "label " << label;
    }
  }
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(130840), "130,840");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Strings, RateStr) {
  EXPECT_EQ(rate_str(12.3), "12.3/s");
  EXPECT_EQ(rate_str(12345.0), "12.3k/s");
  EXPECT_EQ(rate_str(3.2e6), "3.20M/s");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Table, RendersAligned) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_rule();
  t.add_row({"b", "22,222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22,222"), std::string::npos);
  // Header + 2 rows + 4 rules = 7 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 7);
}

TEST(Csv, EscapesAndRenders) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "x,y"});
  w.add_row({"2", "he said \"hi\""});
  const std::string out = w.render();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, WritesFile) {
  CsvWriter w({"h"});
  w.add_row({"v"});
  const std::string path = ::testing::TempDir() + "/es2_csv_test/out.csv";
  EXPECT_TRUE(w.write_file(path));
}

}  // namespace
}  // namespace es2
