// Device-lifecycle and recovery-ladder tests: ring-integrity detection,
// the virtio status state machine, the RecoveryLog MTTR ledger, each
// ladder rung (watchdog -> vhost re-poll -> queue reset -> device
// reset-and-renegotiate), reset/snapshot drift guards, same-seed
// determinism of recovery paths, and the 10-sim-second all-fault-modes
// soak proving zero silent wedges.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/netperf.h"
#include "fault/recovery.h"
#include "harness/experiments.h"
#include "harness/testbed.h"
#include "snapshot/snapshot.h"
#include "snapshot/state_hash.h"
#include "virtio/device_status.h"
#include "virtio/virtqueue.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// Ring-integrity checking (Virtqueue)
// ---------------------------------------------------------------------------

TEST(RingIntegrity, HealthyRingReportsNoFault) {
  Virtqueue vq("tx", 8);
  EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
  ASSERT_TRUE(vq.add_avail({nullptr, 128}));
  auto e = vq.pop_avail();
  ASSERT_TRUE(e.has_value());
  vq.push_used(*e);
  EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
}

TEST(RingIntegrity, TornAvailIdxBreaksAccountingUpward) {
  Virtqueue vq("tx", 8);
  vq.inject_avail_tear();
  EXPECT_EQ(vq.check_integrity(), RingFault::kAvailIdxTorn);
}

TEST(RingIntegrity, UsedOverrunBreaksAccountingDownward) {
  Virtqueue vq("tx", 8);
  vq.inject_used_overrun();
  EXPECT_EQ(vq.check_integrity(), RingFault::kUsedOverrun);
}

TEST(RingIntegrity, DescriptorTableFaultsReportDirectly) {
  Virtqueue a("tx", 8);
  a.inject_desc_out_of_range();
  EXPECT_EQ(a.check_integrity(), RingFault::kDescOutOfRange);
  Virtqueue b("rx", 8);
  b.inject_duplicate_head();
  EXPECT_EQ(b.check_integrity(), RingFault::kDuplicateHead);
}

TEST(RingIntegrity, ResetClearsFaultsAndBumpsEpoch) {
  Virtqueue vq("tx", 8);
  vq.inject_avail_tear();
  vq.flag_fault(vq.check_integrity());
  EXPECT_EQ(vq.pending_fault(), RingFault::kAvailIdxTorn);
  const std::int64_t epoch = vq.reset_epoch();
  vq.reset();
  EXPECT_EQ(vq.check_integrity(), RingFault::kNone);
  EXPECT_EQ(vq.pending_fault(), RingFault::kNone);
  EXPECT_EQ(vq.reset_epoch(), epoch + 1);
  EXPECT_EQ(vq.total_added(), 0);
  EXPECT_EQ(vq.total_used(), 0);
}

// ---------------------------------------------------------------------------
// RecoveryLog ledger
// ---------------------------------------------------------------------------

TEST(RecoveryLog, ProgressOnScopeClosesInstanceAndRecordsMttr) {
  RecoveryLog log;
  log.open(LifecycleFault::kHandlerWedge, kScopeTx, usec(10), 0);
  EXPECT_EQ(log.open_count(), 1);
  // RX progress must not close a TX-scope instance.
  EXPECT_EQ(log.note_progress(kScopeRx, usec(20)), 0);
  EXPECT_EQ(log.note_progress(kScopeTx, usec(35)), 1);
  EXPECT_EQ(log.open_count(), 0);
  ASSERT_EQ(log.instances().size(), 1u);
  EXPECT_TRUE(log.instances()[0].recovered());
  EXPECT_EQ(log.instances()[0].mttr(), usec(25));
  EXPECT_EQ(log.recovered(LifecycleFault::kHandlerWedge), 1);
}

TEST(RecoveryLog, WorkerScopeIsClosedByProgressOnEitherQueue) {
  RecoveryLog log;
  log.open(LifecycleFault::kWorkerCrash, kScopeWorker, usec(10), 0);
  EXPECT_EQ(log.note_progress(kScopeRx, usec(50)), 1);
  EXPECT_TRUE(log.instances()[0].recovered());
}

TEST(RecoveryLog, RungAttributionKeepsTheHighestRungPulled) {
  RecoveryLog log;
  log.open(LifecycleFault::kDescCorrupt, kScopeTx, usec(10), 0);
  log.note_action(RecoveryRung::kVhostRepoll, kScopeTx);
  log.note_action(RecoveryRung::kQueueReset, kScopeTx);
  log.note_action(RecoveryRung::kVhostRepoll, kScopeTx);
  log.note_progress(kScopeTx, usec(90));
  EXPECT_TRUE(log.instances()[0].rung_known);
  EXPECT_EQ(log.instances()[0].rung, RecoveryRung::kQueueReset);
  EXPECT_EQ(log.actions(RecoveryRung::kVhostRepoll), 2);
  EXPECT_EQ(log.actions(RecoveryRung::kQueueReset), 1);
}

// ---------------------------------------------------------------------------
// Device-status state machine (through a real testbed)
// ---------------------------------------------------------------------------

/// A testbed whose lifecycle machinery is armed but dormant: the plan
/// names a period far past every test horizon, so the injector, recovery
/// log, selfcheck and ladder all exist without a single scheduled
/// injection. Tests drive faults by hand.
struct RecoveryWorld {
  explicit RecoveryWorld(bool ladder = true,
                         RingLayout layout = RingLayout::kSplit) {
    TestbedOptions o;
    o.config = Es2Config::pi_h_r();
    o.faults.desc_corrupt_period = sec(1000);  // armed, never fires
    o.guest_params.recovery_ladder = ladder;
    o.vhost_params.ring_layout = layout;
    tb = std::make_unique<Testbed>(std::move(o));
    rx = std::make_unique<NetperfReceiver>(tb->guest(), tb->frontend(), 100,
                                           Proto::kTcp);
    PeerStreamSender::Params p;
    p.proto = Proto::kTcp;
    p.msg_size = 1024;
    p.dupack_threshold = 3;
    tx = std::make_unique<PeerStreamSender>(tb->peer(), 100, p);
    tb->start();
    tx->start();
  }
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<NetperfReceiver> rx;
  std::unique_ptr<PeerStreamSender> tx;
};

TEST(DeviceStatus, FrontendBootsTheDeviceToDriverOk) {
  RecoveryWorld w;
  EXPECT_TRUE(w.tb->backend().driver_ok());
  EXPECT_FALSE(w.tb->backend().needs_reset());
  EXPECT_EQ(w.tb->backend().features_acked(),
            w.tb->backend().features_offered());
  // Boot = one reset + one renegotiation, deterministically.
  EXPECT_EQ(w.tb->backend().device_resets(), 1);
  EXPECT_EQ(w.tb->backend().renegotiations(), 1);
}

TEST(DeviceStatus, NeedsResetIsDeviceOwnedNotGuestWritable) {
  RecoveryWorld w;
  const std::uint8_t full = kStatusAcknowledge | kStatusDriver |
                            kStatusFeaturesOk | kStatusDriverOk;
  w.tb->backend().write_status(full | kStatusDeviceNeedsReset);
  EXPECT_FALSE(w.tb->backend().needs_reset());
}

TEST(DeviceStatus, FeatureAckMustBeASubsetOfTheOffer) {
  RecoveryWorld w;
  w.tb->backend().write_status(kStatusAcknowledge | kStatusDriver);
  EXPECT_FALSE(
      w.tb->backend().ack_features(w.tb->backend().features_offered() | 1));
  EXPECT_TRUE(w.tb->backend().ack_features(kFeatureEventIdx));
  EXPECT_EQ(w.tb->backend().features_acked(), kFeatureEventIdx);
}

TEST(DeviceStatus, WriteZeroPerformsFullReset) {
  RecoveryWorld w;
  w.tb->sim().run_for(msec(10));
  const std::int64_t resets = w.tb->backend().device_resets();
  w.tb->backend().write_status(0);
  EXPECT_FALSE(w.tb->backend().driver_ok());
  EXPECT_EQ(w.tb->backend().features_acked(), 0u);
  EXPECT_EQ(w.tb->backend().device_resets(), resets + 1);
  EXPECT_EQ(w.tb->backend().tx_vq().total_added(), 0);
  EXPECT_EQ(w.tb->backend().rx_vq().total_added(), 0);
}

// ---------------------------------------------------------------------------
// Recovery ladder rungs
// ---------------------------------------------------------------------------

TEST(RecoveryLadder, RingCorruptionIsDetectedQuarantinedAndQueueReset) {
  RecoveryWorld w;
  w.tb->sim().run_for(msec(50));
  w.tb->backend().inject_ring_corruption();
  w.tb->sim().run_for(msec(50));
  EXPECT_GE(w.tb->backend().ring_faults_detected(), 1);
  ASSERT_NE(w.tb->recovery_log(), nullptr);
  ASSERT_EQ(w.tb->recovery_log()->instances().size(), 1u);
  EXPECT_TRUE(w.tb->recovery_log()->instances()[0].recovered());
  EXPECT_GE(w.tb->recovery_log()->actions(RecoveryRung::kQueueReset), 1);
  EXPECT_GE(w.tb->frontend().ladder_queue_resets(), 1);
  EXPECT_FALSE(w.tb->backend().needs_reset());
}

TEST(RecoveryLadder, SingleWedgeEscalatesToAQueueResetOnly) {
  RecoveryWorld w;
  w.tb->sim().run_for(msec(50));
  w.tb->backend().inject_handler_wedge();  // wedges TX
  w.tb->sim().run_for(msec(100));
  ASSERT_EQ(w.tb->recovery_log()->instances().size(), 1u);
  EXPECT_TRUE(w.tb->recovery_log()->instances()[0].recovered());
  EXPECT_GE(w.tb->frontend().ladder_queue_resets(), 1);
  EXPECT_EQ(w.tb->frontend().ladder_device_resets(), 0);
  EXPECT_FALSE(w.tb->backend().needs_reset());
}

TEST(RecoveryLadder, DualQueueWedgeEscalatesToFullDeviceReset) {
  RecoveryWorld w;
  w.tb->sim().run_for(msec(50));
  w.tb->backend().inject_handler_wedge();  // TX
  w.tb->backend().inject_handler_wedge();  // RX
  w.tb->sim().run_for(msec(200));
  EXPECT_GE(w.tb->frontend().ladder_device_resets(), 1);
  // Boot negotiation + the recovery renegotiation.
  EXPECT_GE(w.tb->backend().renegotiations(), 2);
  EXPECT_FALSE(w.tb->backend().needs_reset());
  EXPECT_TRUE(w.tb->backend().driver_ok());
  for (const FaultInstance& fi : w.tb->recovery_log()->instances()) {
    EXPECT_TRUE(fi.recovered());
  }
}

TEST(RecoveryLadder, WorkerCrashRestartsAndRecovers) {
  RecoveryWorld w;
  w.tb->sim().run_for(msec(50));
  w.tb->backend().inject_worker_crash(usec(500));
  EXPECT_TRUE(w.tb->vhost_worker().crashed());
  w.tb->sim().run_for(msec(50));
  EXPECT_FALSE(w.tb->vhost_worker().crashed());
  EXPECT_EQ(w.tb->vhost_worker().crashes(), 1);
  EXPECT_EQ(w.tb->vhost_worker().restarts(), 1);
  ASSERT_EQ(w.tb->recovery_log()->instances().size(), 1u);
  EXPECT_TRUE(w.tb->recovery_log()->instances()[0].recovered());
  // The stream must be flowing again after the restart.
  const std::int64_t before = w.rx->packets_received();
  w.tb->sim().run_for(msec(20));
  EXPECT_GT(w.rx->packets_received(), before);
}

TEST(RecoveryLadder, PackedWrapTearClassifiesAndClimbsTheLadder) {
  RecoveryWorld w(/*ladder=*/true, RingLayout::kPacked);
  w.tb->sim().run_for(msec(50));
  // On a packed device the injector's avail-tear mode becomes a wrap
  // tear: the fault the split layout cannot even express.
  w.tb->backend().inject_avail_tear();  // first tear lands on TX
  EXPECT_EQ(w.tb->backend().tx_vq().check_integrity(),
            RingFault::kBadWrapCounter);
  w.tb->sim().run_for(msec(50));
  EXPECT_GE(w.tb->backend().ring_faults_detected(), 1);
  ASSERT_EQ(w.tb->recovery_log()->instances().size(), 1u);
  EXPECT_TRUE(w.tb->recovery_log()->instances()[0].recovered());
  EXPECT_GE(w.tb->frontend().ladder_queue_resets(), 1);
  EXPECT_FALSE(w.tb->backend().needs_reset());
  // The reset restored a healthy wrap phase.
  EXPECT_EQ(w.tb->backend().tx_vq().check_integrity(), RingFault::kNone);
}

TEST(RecoveryLadder, PackedDuplicateHeadIsQuarantinedAndQueueReset) {
  RecoveryWorld w(/*ladder=*/true, RingLayout::kPacked);
  w.tb->sim().run_for(msec(50));
  w.tb->backend().rx_vq().inject_duplicate_head();
  w.tb->sim().run_for(msec(50));
  // Descriptor-table faults classify identically on both layouts, and the
  // ladder's queue-reset rung clears them the same way.
  EXPECT_GE(w.tb->backend().ring_faults_detected(), 1);
  EXPECT_GE(w.tb->frontend().ladder_queue_resets(), 1);
  EXPECT_EQ(w.tb->frontend().ladder_device_resets(), 0);
  EXPECT_FALSE(w.tb->backend().needs_reset());
  EXPECT_EQ(w.tb->backend().rx_vq().check_integrity(), RingFault::kNone);
}

TEST(RecoveryLadder, LadderOffLeavesTheFaultAsALoudOpenInstance) {
  RecoveryWorld w(/*ladder=*/false);
  w.tb->sim().run_for(msec(50));
  w.tb->backend().inject_ring_corruption();
  w.tb->sim().run_for(msec(100));
  // Detection still happens (the device is self-protecting), but nobody
  // climbs the ladder: the device stays in DEVICE_NEEDS_RESET with its
  // queue quarantined — the condition the lifecycle auditor reports.
  EXPECT_GE(w.tb->backend().ring_faults_detected(), 1);
  EXPECT_TRUE(w.tb->backend().needs_reset());
  EXPECT_EQ(w.tb->frontend().ladder_queue_resets(), 0);
  EXPECT_EQ(w.tb->frontend().ladder_device_resets(), 0);
  EXPECT_EQ(w.tb->backend().queue_resets(), 0);
  EXPECT_EQ(w.tb->backend().device_resets(), 1);  // boot only
  // And it does not heal on its own, however long we wait.
  w.tb->sim().run_for(msec(200));
  EXPECT_TRUE(w.tb->backend().needs_reset());
}

// ---------------------------------------------------------------------------
// Reset/snapshot drift guards (satellite: audit of reset() methods)
// ---------------------------------------------------------------------------
//
// Each guard reads a component's snapshot back field-by-field. If someone
// adds a field to snapshot_state without updating reset() *and this
// inventory*, the trailing read probe trips: after consuming every known
// field the reader must be exactly at the section end.

/// Reads `n` trailing bytes to prove exhaustion: ok() must still hold,
/// and one more byte must poison the reader.
void expect_exhausted(SnapshotReader& r) {
  EXPECT_TRUE(r.ok()) << "snapshot has fewer fields than the inventory";
  (void)r.get_u8();
  EXPECT_FALSE(r.ok()) << "snapshot has more fields than the inventory — "
                          "update reset() and this test together";
}

TEST(ResetSnapshotDrift, VirtqueueInventoryMatchesAndResetRestoresIt) {
  Virtqueue vq("tx", 8);
  ASSERT_TRUE(vq.add_avail({nullptr, 64}));
  auto e = vq.pop_avail();
  vq.push_used(*e);
  vq.disable_notifications();
  vq.enable_interrupts();
  vq.reset();

  SnapshotWriter w;
  w.begin_section("vq");
  vq.snapshot_state(w);
  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.load(w.serialize(), &error)) << error;
  ASSERT_TRUE(r.seek("vq"));
  EXPECT_EQ(r.get_u32(), 8u);   // capacity survives reset
  EXPECT_EQ(r.get_u32(), 0u);   // avail ring emptied
  EXPECT_EQ(r.get_u32(), 0u);   // used ring emptied
  EXPECT_EQ(r.get_u32(), 0u);   // in flight
  EXPECT_TRUE(r.get_bool());    // notifications re-enabled
  EXPECT_EQ(r.get_i64(), 0);    // avail_idx
  EXPECT_EQ(r.get_i64(), 0);    // avail_event
  EXPECT_TRUE(r.get_bool());    // interrupts re-enabled
  EXPECT_EQ(r.get_i64(), 0);    // used_idx
  EXPECT_EQ(r.get_i64(), 0);    // used_event
  EXPECT_EQ(r.get_i64(), 0);    // notify_enables: cumulative telemetry,
  EXPECT_EQ(r.get_i64(), 1);    // irq_enables:    deliberately kept
  expect_exhausted(r);
}

TEST(ResetSnapshotDrift, PackedVirtqueueAppendsOnlyTheWrapCounters) {
  // The packed layout may only *append* to the split snapshot layout
  // (split images must stay byte-identical): two wrap bools at the end,
  // nothing else, and reset() restores both to the boot phase.
  Virtqueue vq("tx", 8, RingLayout::kPacked);
  for (int i = 0; i < 9; ++i) {  // cross one wrap so the phase flipped
    ASSERT_TRUE(vq.add_avail({nullptr, 64}));
    auto e = vq.pop_avail();
    vq.push_used(*e);
    vq.pop_used();
  }
  vq.reset();

  SnapshotWriter w;
  w.begin_section("vq");
  vq.snapshot_state(w);
  SnapshotReader r;
  ASSERT_TRUE(r.load(w.serialize()));
  ASSERT_TRUE(r.seek("vq"));
  EXPECT_EQ(r.get_u32(), 8u);   // capacity
  EXPECT_EQ(r.get_u32(), 0u);   // avail ring emptied
  EXPECT_EQ(r.get_u32(), 0u);   // used ring emptied
  EXPECT_EQ(r.get_u32(), 0u);   // in flight
  EXPECT_TRUE(r.get_bool());    // notifications re-enabled
  EXPECT_EQ(r.get_i64(), 0);    // avail_idx
  EXPECT_EQ(r.get_i64(), 0);    // avail_event
  EXPECT_TRUE(r.get_bool());    // interrupts re-enabled
  EXPECT_EQ(r.get_i64(), 0);    // used_idx
  EXPECT_EQ(r.get_i64(), 0);    // used_event
  EXPECT_EQ(r.get_i64(), 0);    // notify_enables
  EXPECT_EQ(r.get_i64(), 0);    // irq_enables
  EXPECT_TRUE(r.get_bool());    // driver wrap counter back to boot phase
  EXPECT_TRUE(r.get_bool());    // device wrap counter back to boot phase
  expect_exhausted(r);
}

TEST(ResetSnapshotDrift, VirtqueueLifecycleInventoryMatches) {
  Virtqueue vq("tx", 8);
  vq.inject_avail_tear();
  vq.flag_fault(vq.check_integrity());
  vq.reset();

  SnapshotWriter w;
  w.begin_section("vq.lc");
  vq.snapshot_lifecycle_state(w);
  SnapshotReader r;
  ASSERT_TRUE(r.load(w.serialize()));
  ASSERT_TRUE(r.seek("vq.lc"));
  EXPECT_TRUE(r.get_bool());  // enabled (reset leaves the queue enabled)
  EXPECT_EQ(r.get_i64(), 1);  // reset epoch bumped
  EXPECT_EQ(r.get_u8(), 0u);  // injected fault cleared
  EXPECT_EQ(r.get_u8(), 0u);  // pending fault cleared
  expect_exhausted(r);
}

TEST(ResetSnapshotDrift, EmulatedLapicInventoryMatchesAndResetRestoresIt) {
  EmulatedLapic lapic;
  lapic.post(40);
  lapic.post(50);
  lapic.begin_service(50);
  lapic.reset();

  SnapshotWriter w;
  w.begin_section("lapic");
  lapic.snapshot_state(w);
  SnapshotReader r;
  ASSERT_TRUE(r.load(w.serialize()));
  ASSERT_TRUE(r.seek("lapic"));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.get_u64(), 0u);  // IRR cleared
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.get_u64(), 0u);  // ISR cleared
  EXPECT_EQ(r.get_i64(), 2);  // posts: lifetime counter, kept
  EXPECT_EQ(r.get_i64(), 0);  // eois
  expect_exhausted(r);
}

TEST(ResetSnapshotDrift, VApicPageInventoryMatchesAndResetRestoresIt) {
  VApicPage vapic;
  vapic.pi().post(40);
  vapic.sync_pir();
  vapic.reset();

  SnapshotWriter w;
  w.begin_section("vapic");
  vapic.snapshot_state(w);
  SnapshotReader r;
  ASSERT_TRUE(r.load(w.serialize()));
  ASSERT_TRUE(r.seek("vapic"));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.get_u64(), 0u);  // PIR cleared
  EXPECT_FALSE(r.get_bool());  // ON cleared
  EXPECT_EQ(r.get_i64(), 1);   // pi posts: lifetime counter, kept
  EXPECT_EQ(r.get_i64(), 1);   // pi notification IPIs: lifetime, kept
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.get_u64(), 0u);  // vIRR cleared
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.get_u64(), 0u);  // vISR cleared
  EXPECT_EQ(r.get_i64(), 0);   // eois
  expect_exhausted(r);
}

TEST(ResetSnapshotDrift, FrontendInventoryMatches) {
  RecoveryWorld w;
  SnapshotWriter sw;
  sw.begin_section("net");
  w.tb->frontend().snapshot_state(sw);
  SnapshotReader r;
  ASSERT_TRUE(r.load(sw.serialize()));
  ASSERT_TRUE(r.seek("net"));
  (void)r.get_bool();  // napi_scheduled
  (void)r.get_u32();   // tx_waiters
  (void)r.get_i64();   // tx_stops
  (void)r.get_i64();   // rx_polled
  (void)r.get_i64();   // kicks
  (void)r.get_i64();   // watchdog_last_used
  (void)r.get_u32();   // watchdog_strikes
  (void)r.get_i64();   // tx_watchdog_kicks
  (void)r.get_i64();   // rx_watchdog_last_polled
  (void)r.get_u32();   // rx_watchdog_strikes
  (void)r.get_i64();   // rx_watchdog_polls
  expect_exhausted(r);
}

// ---------------------------------------------------------------------------
// Determinism: recovery paths must not perturb the hash oracle
// ---------------------------------------------------------------------------

TEST(RecoveryDeterminism, FaultsOffHashSeriesIsReproducibleWithMachineryBuilt) {
  StreamOptions o;
  o.config = Es2Config::pi_h_r();
  o.warmup = msec(50);
  o.measure = msec(200);
  o.snapshot.hash_epochs = true;
  const StreamResult a = run_stream(o);
  const StreamResult b = run_stream(o);
  ASSERT_NE(a.hashes, nullptr);
  ASSERT_NE(b.hashes, nullptr);
  const Divergence d = find_divergence(*a.hashes, *b.hashes);
  EXPECT_EQ(d.epoch, -1) << d.detail;
}

TEST(RecoveryDeterminism, SameSeedRecoveryRunsProduceIdenticalLedgers) {
  RecoveryStreamOptions o;
  o.chaos.stream.config = Es2Config::pi_h_r();
  o.chaos.stream.vm_sends = false;
  o.chaos.stream.warmup = msec(100);
  o.chaos.stream.measure = msec(400);
  o.chaos.faults.handler_wedge_period = msec(89);
  o.chaos.faults.worker_crash_period = msec(113);
  o.chaos.stream.snapshot.hash_epochs = true;
  const RecoveryStreamResult a = run_recovery_stream(o);
  const RecoveryStreamResult b = run_recovery_stream(o);
  EXPECT_GT(a.injected, 0);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.mttr_p50, b.mttr_p50);
  EXPECT_EQ(a.mttr_p99, b.mttr_p99);
  ASSERT_NE(a.chaos.stream.hashes, nullptr);
  const Divergence d =
      find_divergence(*a.chaos.stream.hashes, *b.chaos.stream.hashes);
  EXPECT_EQ(d.epoch, -1) << d.detail;
}

TEST(RecoveryDeterminism, PackedRingFaultPlanRecoversCleanly) {
  // The lifecycle fault plan drives a packed-ring world: tears arrive as
  // wrap tears, corruption as packed descriptor faults — every instance
  // must still recover through the same ladder, deterministically.
  RecoveryStreamOptions o;
  o.chaos.stream.config = Es2Config::pi_h_r();
  o.chaos.stream.ring_layout = RingLayout::kPacked;
  o.chaos.stream.vm_sends = false;
  o.chaos.stream.warmup = msec(100);
  o.chaos.stream.measure = msec(400);
  o.chaos.faults.desc_corrupt_period = msec(97);
  o.chaos.faults.avail_tear_period = msec(103);
  const RecoveryStreamResult a = run_recovery_stream(o, "packed-faults");
  EXPECT_TRUE(a.clean()) << a.chaos.report.to_line();
  EXPECT_GT(a.injected, 0);
  EXPECT_EQ(a.recovered, a.injected);
  EXPECT_GE(a.ring_faults_detected, 1);
  const RecoveryStreamResult b = run_recovery_stream(o, "packed-faults");
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.mttr_p50, b.mttr_p50);
  EXPECT_EQ(a.mttr_p99, b.mttr_p99);
}

// ---------------------------------------------------------------------------
// The soak: 10 simulated seconds, every fault mode, zero silent wedges
// ---------------------------------------------------------------------------

TEST(RecoverySoak, AllFaultModesRecoverOrReportWithinTenSimSeconds) {
  RecoveryStreamOptions o;
  o.chaos.stream.config = Es2Config::pi_h_r();
  o.chaos.stream.vm_sends = false;
  o.chaos.stream.warmup = msec(200);
  o.chaos.stream.measure = sec(10);
  o.chaos.faults.desc_corrupt_period = msec(97);
  o.chaos.faults.avail_tear_period = msec(103);
  o.chaos.faults.handler_wedge_period = msec(89);
  o.chaos.faults.worker_crash_period = msec(113);
  o.chaos.audit = true;
  o.chaos.budget.max_sim_time = sec(15);
  o.chaos.budget.progress_window = msec(100);
  o.chaos.budget.stall_windows = 12;
  const RecoveryStreamResult r = run_recovery_stream(o, "soak");

  EXPECT_TRUE(r.chaos.report.ok()) << r.chaos.report.to_line();
  EXPECT_GT(r.injected, 100);  // every mode, many instances
  EXPECT_EQ(r.unrecovered, 0);
  EXPECT_TRUE(r.wedges.empty());
  for (const WedgeReport& wr : r.wedges) ADD_FAILURE() << wr.detail;
  EXPECT_EQ(r.chaos.audit_violations, 0);
  // Every mode actually injected and fully recovered.
  EXPECT_EQ(r.modes.size(), 4u);
  for (const RecoveryModeStats& m : r.modes) {
    EXPECT_GT(m.injected, 0) << lifecycle_fault_name(m.mode);
    EXPECT_EQ(m.recovered, m.injected) << lifecycle_fault_name(m.mode);
    EXPECT_GT(m.mttr_p99, 0) << lifecycle_fault_name(m.mode);
  }
  // MTTR is bounded: nothing took longer than a tenth of the soak.
  EXPECT_LT(r.mttr_p99, sec(1));
}

}  // namespace
}  // namespace es2
