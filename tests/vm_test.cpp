// Unit tests for the VM layer: exit accounting, the vCPU event-path state
// machine under both interrupt modes, HLT, the MSI router, and the
// "no redirection of per-vCPU vectors" safety rule.
#include <gtest/gtest.h>

#include <memory>

#include "vm/vm.h"

namespace es2 {
namespace {

/// Minimal guest: runs a busy loop; takes interrupts with a fixed handler
/// cost; can be told to issue kicks or halt.
class StubGuest final : public GuestCpu {
 public:
  explicit StubGuest(Vm& vm) : vm_(vm) { vm.set_guest(this); }

  void run(int vcpu_index) override {
    Vcpu& vcpu = vm_.vcpu(vcpu_index);
    if (halt_when_idle_) {
      vcpu.guest_halt();
      return;
    }
    ++work_units_;
    if (kicks_to_issue_ > 0) {
      --kicks_to_issue_;
      vcpu.guest_exec(2300, [this, &vcpu] {
        vcpu.guest_io_kick([this] { ++notifies_; },
                           [this, &vcpu] { run(vcpu.index()); });
      });
      return;
    }
    vcpu.guest_exec(115000 /* 50us */, [this, &vcpu] { run(vcpu.index()); });
  }

  void take_interrupt(int vcpu_index, Vector vector) override {
    Vcpu& vcpu = vm_.vcpu(vcpu_index);
    ++irqs_;
    last_vector_ = vector;
    irq_vcpu_ = vcpu_index;
    vcpu.guest_exec(4600 /* 2us handler */, [&vcpu] {
      vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
    });
  }

  Vm& vm_;
  int work_units_ = 0;
  int irqs_ = 0;
  int notifies_ = 0;
  int kicks_to_issue_ = 0;
  bool halt_when_idle_ = false;
  Vector last_vector_ = 0;
  int irq_vcpu_ = -1;
};

struct World {
  explicit World(InterruptVirtMode mode, int vcpus = 1, std::uint64_t seed = 1)
      : sim(seed), host(sim, 8) {
    std::vector<int> pins;
    for (int i = 0; i < vcpus; ++i) pins.push_back(i);
    vm = &host.create_vm("vm", pins, mode);
    vm->set_timer_hz(0);  // tests control interrupts explicitly
    guest = std::make_unique<StubGuest>(*vm);
  }
  Simulator sim;
  KvmHost host;
  Vm* vm;
  std::unique_ptr<StubGuest> guest;
};

TEST(Vcpu, IoKickTriggersExactlyOneIoExit) {
  World w(InterruptVirtMode::kEmulatedLapic);
  w.guest->kicks_to_issue_ = 5;
  w.host.costs();
  w.vm->start();
  w.sim.run_for(msec(5));
  EXPECT_EQ(w.vm->vcpu(0).stats().count(ExitReason::kIoInstruction), 5);
  EXPECT_EQ(w.guest->notifies_, 5);
}

TEST(Vcpu, EmulatedInterruptCostsTwoExits) {
  // Delivery to a running guest: EXTERNAL_INTERRUPT (kick IPI) +
  // APIC_ACCESS (EOI) — the paper's Fig. 1 pattern.
  World w(InterruptVirtMode::kEmulatedLapic);
  w.vm->start();
  w.sim.run_for(msec(1));
  auto& vcpu = w.vm->vcpu(0);
  const auto ext_before = vcpu.stats().count(ExitReason::kExternalInterrupt);
  const auto apic_before = vcpu.stats().count(ExitReason::kApicAccess);
  vcpu.deliver_interrupt(0x41);
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irqs_, 1);
  EXPECT_EQ(vcpu.stats().count(ExitReason::kExternalInterrupt), ext_before + 1);
  EXPECT_EQ(vcpu.stats().count(ExitReason::kApicAccess), apic_before + 1);
}

TEST(Vcpu, PostedInterruptCostsZeroExits) {
  World w(InterruptVirtMode::kPostedInterrupt);
  w.vm->start();
  w.sim.run_for(msec(1));
  auto& vcpu = w.vm->vcpu(0);
  const auto total_before = vcpu.stats().total();
  vcpu.deliver_interrupt(0x41);
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irqs_, 1);
  // Only background noise exits may have occurred; none of the interrupt
  // kinds.
  EXPECT_EQ(vcpu.stats().count(ExitReason::kExternalInterrupt), 0);
  EXPECT_EQ(vcpu.stats().count(ExitReason::kApicAccess), 0);
  EXPECT_GE(vcpu.stats().total(), total_before);
}

TEST(Vcpu, InterruptToHostModeVcpuSkipsKickExit) {
  // Post while the vCPU handles another exit: injection at the next entry,
  // no EXTERNAL_INTERRUPT exit — why the paper's Table I shows fewer
  // delivery than completion exits.
  World w(InterruptVirtMode::kEmulatedLapic);
  w.guest->kicks_to_issue_ = 1000000;  // guest constantly exits
  w.vm->start();
  w.sim.run_for(msec(2));
  auto& vcpu = w.vm->vcpu(0);
  vcpu.stats().begin_window(w.sim.now());
  // Deliver lots of interrupts at random-ish points; many land in host mode.
  for (int i = 0; i < 50; ++i) {
    w.sim.after(usec(37) * (i + 1), [&vcpu] { vcpu.deliver_interrupt(0x41); });
  }
  w.sim.run_for(msec(10));
  const auto delivery = vcpu.stats().count(ExitReason::kExternalInterrupt);
  const auto completion = vcpu.stats().count(ExitReason::kApicAccess);
  EXPECT_EQ(completion, 50);
  EXPECT_LT(delivery, completion);
}

TEST(Vcpu, HaltBlocksUntilInterrupt) {
  World w(InterruptVirtMode::kEmulatedLapic);
  w.guest->halt_when_idle_ = true;
  w.vm->start();
  w.sim.run_for(msec(1));
  auto& vcpu = w.vm->vcpu(0);
  EXPECT_TRUE(vcpu.halted());
  EXPECT_EQ(vcpu.thread().state(), SimThread::State::kBlocked);
  EXPECT_EQ(vcpu.stats().count(ExitReason::kHlt), 1);
  vcpu.deliver_interrupt(0x41);
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irqs_, 1);
  EXPECT_TRUE(vcpu.halted());  // back to idle after the handler
}

TEST(Vcpu, PostedInterruptWakesHaltedVcpu) {
  World w(InterruptVirtMode::kPostedInterrupt);
  w.guest->halt_when_idle_ = true;
  w.vm->start();
  w.sim.run_for(msec(1));
  auto& vcpu = w.vm->vcpu(0);
  ASSERT_TRUE(vcpu.halted());
  vcpu.deliver_interrupt(0x55);
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irqs_, 1);
  EXPECT_EQ(w.guest->last_vector_, 0x55);
}

TEST(Vcpu, TigReflectsGuestShare) {
  World w(InterruptVirtMode::kEmulatedLapic);
  w.vm->start();
  w.sim.run_for(msec(10));
  auto& stats = w.vm->vcpu(0).stats();
  // Pure busy loop with only noise exits: TIG should be very high.
  EXPECT_GT(stats.tig_percent(), 97.0);
  EXPECT_LT(stats.tig_percent(), 100.0);
}

TEST(Vcpu, KickLoweredTigVsPureCompute) {
  World compute(InterruptVirtMode::kEmulatedLapic, 1, 3);
  compute.vm->start();
  compute.sim.run_for(msec(20));
  World kicker(InterruptVirtMode::kEmulatedLapic, 1, 3);
  kicker.guest->kicks_to_issue_ = 1000000;
  kicker.vm->start();
  kicker.sim.run_for(msec(20));
  EXPECT_LT(kicker.vm->vcpu(0).stats().tig_percent(),
            compute.vm->vcpu(0).stats().tig_percent() - 10.0);
}

TEST(Vcpu, NoiseExitsPopulateOthersBucket) {
  World w(InterruptVirtMode::kPostedInterrupt);
  w.vm->start();
  w.sim.run_for(msec(100));
  const auto& stats = w.vm->vcpu(0).stats();
  EXPECT_GT(stats.count(ExitReason::kEptViolation) +
                stats.count(ExitReason::kOther),
            50);
  EXPECT_GT(stats.others_rate(w.sim.now()), 500.0);
}

TEST(Vm, GuestTimerDeliversPerVcpuTimerVector) {
  World w(InterruptVirtMode::kEmulatedLapic);
  w.vm->set_timer_hz(1000);
  w.vm->start();
  w.sim.run_for(msec(20));
  EXPECT_GE(w.guest->irqs_, 15);
  EXPECT_EQ(w.guest->last_vector_, kLocalTimerVector);
}

TEST(ExitStats, WindowResetsRates) {
  World w(InterruptVirtMode::kEmulatedLapic);
  w.guest->kicks_to_issue_ = 100;
  w.vm->start();
  w.sim.run_for(msec(5));
  auto& stats = w.vm->vcpu(0).stats();
  EXPECT_EQ(stats.count(ExitReason::kIoInstruction), 100);
  stats.begin_window(w.sim.now());
  EXPECT_EQ(stats.count(ExitReason::kIoInstruction), 0);
  EXPECT_DOUBLE_EQ(stats.rate(ExitReason::kIoInstruction, w.sim.now()), 0.0);
}

TEST(ExitStats, SummaryMentionsCausesAndTig) {
  ExitStats stats;
  stats.record_exit(ExitReason::kIoInstruction);
  stats.add_span(70, true);
  stats.add_span(30, false);
  const std::string s = stats.summary(kSecond);
  EXPECT_NE(s.find("io_instruction"), std::string::npos);
  EXPECT_NE(s.find("TIG=70.0%"), std::string::npos);
}

TEST(IrqRouter, RoutesToAffinityWithoutInterceptor) {
  World w(InterruptVirtMode::kEmulatedLapic, 2);
  w.vm->start();
  w.sim.run_for(msec(1));
  MsiMessage msi{0x44, 1, DeliveryMode::kLowestPriority};
  w.host.router().deliver_msi(*w.vm, msi);
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irq_vcpu_, 1);
  EXPECT_EQ(w.host.router().delivered(), 1);
  EXPECT_EQ(w.host.router().redirected(), 0);
}

TEST(IrqRouter, InterceptorRewritesDeviceVectors) {
  World w(InterruptVirtMode::kEmulatedLapic, 2);
  w.host.router().set_interceptor([](Vm&, const MsiMessage&) { return 0; });
  w.vm->start();
  w.sim.run_for(msec(1));
  w.host.router().deliver_msi(*w.vm,
                              {0x44, 1, DeliveryMode::kLowestPriority});
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irq_vcpu_, 0);
  EXPECT_EQ(w.host.router().redirected(), 1);
}

TEST(IrqRouter, NeverOffersTimerVectorToInterceptor) {
  // Redirecting a per-vCPU vector could crash the guest (paper §V-C): the
  // router must not even consult the interceptor for them.
  World w(InterruptVirtMode::kEmulatedLapic, 2);
  int consulted = 0;
  w.host.router().set_interceptor([&](Vm&, const MsiMessage&) {
    ++consulted;
    return 0;
  });
  w.vm->start();
  w.sim.run_for(msec(1));
  w.host.router().deliver_msi(
      *w.vm, {kLocalTimerVector, 1, DeliveryMode::kFixed});
  w.sim.run_for(msec(1));
  EXPECT_EQ(consulted, 0);
  EXPECT_EQ(w.guest->irq_vcpu_, 1);  // delivered to its own vCPU
}

TEST(IrqRouter, NegativeInterceptorKeepsAffinity) {
  World w(InterruptVirtMode::kEmulatedLapic, 2);
  w.host.router().set_interceptor([](Vm&, const MsiMessage&) { return -1; });
  w.vm->start();
  w.sim.run_for(msec(1));
  w.host.router().deliver_msi(*w.vm,
                              {0x44, 1, DeliveryMode::kLowestPriority});
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.guest->irq_vcpu_, 1);
  EXPECT_EQ(w.host.router().redirected(), 0);
}

TEST(Vm, AggregateStatsSumsVcpus) {
  World w(InterruptVirtMode::kEmulatedLapic, 2);
  w.guest->kicks_to_issue_ = 10;
  w.vm->start();
  w.sim.run_for(msec(5));
  const ExitStats agg = w.vm->aggregate_stats();
  EXPECT_EQ(agg.count(ExitReason::kIoInstruction), 10);
}

}  // namespace
}  // namespace es2
