// Overload-resilience tests: the receive-livelock verdict (a storm-wedged
// guest is flagged kLivelock, not a generic kNoProgress), the watchdog's
// stall tolerance, the graceful-degradation ladder clearing the livelock
// with goodput retained, calm-ramp passivity of the mitigation machinery,
// bounded-container overflow accounting, and same-seed determinism of
// storm runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "sim/simulator.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// ScenarioWatchdog: stall tolerance + livelock classification
// ---------------------------------------------------------------------------

TEST(StallTolerance, TrickleWithinToleranceCountsAsStall) {
  Simulator sim(1);
  // Progress trickles +1 per window: under the strict rule that is alive,
  // under a tolerance of 2 it is a stall.
  std::int64_t progress = 0;
  PeriodicTimer ticker(sim, usec(100), [&] { ++progress; });
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;
  budget.stall_tolerance = 2;
  ScenarioWatchdog wd(sim, budget);
  EXPECT_FALSE(wd.run_for(msec(10), [&] { return progress; }));
  EXPECT_EQ(wd.status(), ScenarioStatus::kNoProgress);
}

TEST(StallTolerance, ZeroToleranceKeepsStrictRule) {
  Simulator sim(1);
  std::int64_t progress = 0;
  PeriodicTimer ticker(sim, usec(100), [&] { ++progress; });
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;  // stall_tolerance stays 0
  ScenarioWatchdog wd(sim, budget);
  EXPECT_TRUE(wd.run_for(msec(5), [&] { return progress; }));
  EXPECT_TRUE(wd.ok());
}

TEST(StallTolerance, RateAboveTolerancePasses) {
  Simulator sim(1);
  std::int64_t progress = 0;
  PeriodicTimer ticker(sim, usec(20), [&] { ++progress; });  // +5 per window
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;
  budget.stall_tolerance = 2;
  ScenarioWatchdog wd(sim, budget);
  EXPECT_TRUE(wd.run_for(msec(5), [&] { return progress; }));
  EXPECT_TRUE(wd.ok());
}

TEST(LivelockVerdict, StallWithClimbingActivityIsLivelock) {
  Simulator sim(1);
  std::int64_t activity = 0;
  PeriodicTimer ticker(sim, usec(10), [&] { ++activity; });
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;
  ScenarioWatchdog wd(sim, budget);
  wd.set_activity_probe([&] { return activity; });
  EXPECT_FALSE(wd.run_for(msec(10), [] { return std::int64_t{7}; }));
  EXPECT_EQ(wd.status(), ScenarioStatus::kLivelock);
}

TEST(LivelockVerdict, StallWithFlatActivityStaysNoProgress) {
  Simulator sim(1);
  // Events churn (the ticker) but the activity probe itself is flat: a
  // wedge, not a livelock.
  PeriodicTimer ticker(sim, usec(10), [] {});
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;
  ScenarioWatchdog wd(sim, budget);
  wd.set_activity_probe([] { return std::int64_t{1}; });
  EXPECT_FALSE(wd.run_for(msec(10), [] { return std::int64_t{7}; }));
  EXPECT_EQ(wd.status(), ScenarioStatus::kNoProgress);
}

// ---------------------------------------------------------------------------
// run_storm integration
// ---------------------------------------------------------------------------

// A collapse-grade flash crowd, shortened for test runtime: the peak rate
// outruns the guest's NAPI drain ceiling (~250k pps of data-bearing SYNs)
// for long enough that the off-arm holds >8 stalled watchdog windows.
StormOptions collapse_options(bool mitigation) {
  StormOptions o;
  o.config = Es2Config::baseline();
  o.mitigation = mitigation;
  o.shape.base_rate = 4000;
  o.shape.peak_rate = 400000;
  o.shape.ramp_up = msec(100);
  o.shape.hold = msec(550);
  o.shape.ramp_down = msec(100);
  o.cooldown = msec(150);
  o.syn_payload = 256;
  o.expect_livelock = !mitigation;
  o.budget.max_sim_time = sec(5);
  return o;
}

StormOptions calm_options(bool mitigation) {
  StormOptions o;
  o.config = Es2Config::baseline();
  o.mitigation = mitigation;
  o.shape.base_rate = 1000;
  o.shape.peak_rate = 3000;
  o.shape.ramp_up = msec(100);
  o.shape.hold = msec(200);
  o.shape.ramp_down = msec(100);
  o.cooldown = msec(100);
  o.budget.max_sim_time = sec(5);
  return o;
}

TEST(Storm, CollapseWithoutMitigationIsLivelockNotWedge) {
  const StormResult r = run_storm(collapse_options(/*mitigation=*/false),
                                  "storm_off");
  // The whole point: the overload wedge classifies as receive livelock
  // (activity climbing while the app starves), not as a generic wedge.
  EXPECT_TRUE(r.livelocked);
  EXPECT_EQ(r.report.status, ScenarioStatus::kLivelock);
  EXPECT_NE(r.report.status, ScenarioStatus::kNoProgress);
  EXPECT_TRUE(r.acceptable());  // expected-livelock cells are acceptable
  // Load shed at the modeled finite queues, and every drop is attributed.
  EXPECT_GT(r.drops.sock_backlog, 0);
  EXPECT_GT(r.drops.syn_backlog, 0);
  EXPECT_GT(r.drops.total(), 0);
  // Mitigation off: the ladder never engages.
  EXPECT_EQ(r.overload_max_rung, 0);
  EXPECT_EQ(r.livelock_detections, 0);
  EXPECT_EQ(r.episodes, 0);
  // Client-side finite pending table overflowed and counted it.
  EXPECT_GT(r.client_pending_overflows, 0);
  // The vhost work list stayed bounded while 400k pps were offered.
  EXPECT_GT(r.worker_active_high_water, 0u);
  EXPECT_LE(r.worker_active_high_water, 64u);
}

TEST(Storm, MitigationClearsLivelockAndRetainsGoodput) {
  const StormResult off = run_storm(collapse_options(/*mitigation=*/false),
                                    "storm_off");
  const StormResult on = run_storm(collapse_options(/*mitigation=*/true),
                                   "storm_on");
  ASSERT_TRUE(off.livelocked);
  // The mitigated arm survives supervision: no livelock verdict.
  EXPECT_TRUE(on.report.ok()) << on.report.detail;
  EXPECT_FALSE(on.livelocked);
  // The detector fired and the ladder engaged at least rung 1.
  EXPECT_GT(on.livelock_detections, 0);
  EXPECT_GE(on.overload_max_rung, 1);
  EXPECT_GT(on.ksoftirqd_polls, 0);
  // Every livelock episode in the ledger recovered (MTTR is measurable).
  EXPECT_GT(on.episodes, 0);
  EXPECT_EQ(on.episodes_recovered, on.episodes);
  EXPECT_GT(on.mttr_p50, 0);
  // Graceful degradation: >= 2x the establishments of the collapsed arm
  // over the identical measured span.
  EXPECT_GE(on.established, 2 * off.established);
  EXPECT_GE(on.served, 2 * off.served);
}

TEST(Storm, CalmRampMitigationIsPassive) {
  const StormResult off = run_storm(calm_options(/*mitigation=*/false),
                                    "calm_off");
  const StormResult on = run_storm(calm_options(/*mitigation=*/true),
                                   "calm_on");
  EXPECT_TRUE(off.report.ok()) << off.report.detail;
  EXPECT_TRUE(on.report.ok()) << on.report.detail;
  // No storm, no detector activity, no shedding.
  EXPECT_EQ(on.livelock_detections, 0);
  EXPECT_EQ(on.overload_max_rung, 0);
  EXPECT_EQ(on.episodes, 0);
  EXPECT_EQ(on.drops.total(), 0);
  // Armed-but-idle mitigation must not perturb the workload's results.
  EXPECT_EQ(on.attempted, off.attempted);
  EXPECT_EQ(on.established, off.established);
  EXPECT_EQ(on.served, off.served);
}

TEST(Storm, SameSeedRunsAreIdentical) {
  StormOptions o = collapse_options(/*mitigation=*/true);
  o.shape.hold = msec(250);  // shorter: equality is the assertion here
  const StormResult a = run_storm(o, "det_a");
  const StormResult b = run_storm(o, "det_b");
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.established, b.established);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.accepts, b.accepts);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.drops.total(), b.drops.total());
  EXPECT_EQ(a.drops.sock_backlog, b.drops.sock_backlog);
  EXPECT_EQ(a.drops.syn_backlog, b.drops.syn_backlog);
  EXPECT_EQ(a.livelock_detections, b.livelock_detections);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.ksoftirqd_polls, b.ksoftirqd_polls);
  EXPECT_EQ(static_cast<int>(a.report.status),
            static_cast<int>(b.report.status));
}

}  // namespace
}  // namespace es2
