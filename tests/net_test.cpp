// Unit tests for the network substrate: links, peer host, packets.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "net/peer.h"

namespace es2 {
namespace {

PacketPtr packet_of(Bytes wire, std::uint64_t flow = 1) {
  Packet p;
  p.proto = Proto::kUdp;
  p.flow = flow;
  p.wire_size = wire;
  p.payload = wire - kTcpUdpHeader;
  return make_packet(std::move(p));
}

TEST(Packet, SegmentsForSizes) {
  EXPECT_EQ(segments_for(0), 1);
  EXPECT_EQ(segments_for(100), 1);
  EXPECT_EQ(segments_for(kMtu - kTcpUdpHeader), 1);
  EXPECT_EQ(segments_for(kMtu - kTcpUdpHeader + 1), 2);
  EXPECT_EQ(segments_for(16 * kKiB), 12);
}

TEST(Link, DeliversAfterSerializationPlusLatency) {
  Simulator sim;
  Link link(sim, 40.0, 1500);
  SimTime arrived = -1;
  link.set_receiver([&](PacketPtr) { arrived = sim.now(); });
  link.transmit(packet_of(1500));
  sim.run_to_completion();
  // 1500B at 40Gb/s = 300ns serialization + 1500ns latency.
  EXPECT_EQ(arrived, 300 + 1500);
}

TEST(Link, SerializesBackToBackPackets) {
  Simulator sim;
  Link link(sim, 40.0, 0);
  std::vector<SimTime> arrivals;
  link.set_receiver([&](PacketPtr) { arrivals.push_back(sim.now()); });
  link.transmit(packet_of(1500));
  link.transmit(packet_of(1500));
  link.transmit(packet_of(1500));
  sim.run_to_completion();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 300);
  EXPECT_EQ(arrivals[2] - arrivals[1], 300);
}

TEST(Link, CountsTraffic) {
  Simulator sim;
  Link link(sim, 10.0, 0);
  link.set_receiver([](PacketPtr) {});
  link.transmit(packet_of(1000));
  link.transmit(packet_of(500));
  sim.run_to_completion();
  EXPECT_EQ(link.packets_sent(), 2);
  EXPECT_EQ(link.bytes_sent(), 1500);
}

TEST(PeerHost, RoutesByFlow) {
  Simulator sim;
  Link to_vm(sim, 40.0, 100);
  Link from_vm(sim, 40.0, 100);
  PeerHost peer(sim, to_vm);
  peer.attach_rx(from_vm);
  int got1 = 0, got2 = 0;
  peer.register_flow(1, [&](const PacketPtr&) { ++got1; });
  peer.register_flow(2, [&](const PacketPtr&) { ++got2; });
  from_vm.transmit(packet_of(200, 1));
  from_vm.transmit(packet_of(200, 2));
  from_vm.transmit(packet_of(200, 2));
  from_vm.transmit(packet_of(200, 99));  // unrouted
  sim.run_to_completion();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 2);
  EXPECT_EQ(peer.unrouted(), 1);
}

TEST(PeerHost, SendAddsProcessingDelay) {
  Simulator sim;
  Link to_vm(sim, 40.0, 0);
  PeerHost peer(sim, to_vm, /*proc_delay=*/2500);
  SimTime arrived = -1;
  to_vm.set_receiver([&](PacketPtr) { arrived = sim.now(); });
  peer.send(packet_of(100));
  sim.run_to_completion();
  EXPECT_GE(arrived, 2500);
}

TEST(PeerHost, UnregisterStopsRouting) {
  Simulator sim;
  Link to_vm(sim, 40.0, 0);
  Link from_vm(sim, 40.0, 0);
  PeerHost peer(sim, to_vm);
  peer.attach_rx(from_vm);
  int got = 0;
  peer.register_flow(5, [&](const PacketPtr&) { ++got; });
  from_vm.transmit(packet_of(100, 5));
  sim.run_to_completion();
  peer.unregister_flow(5);
  from_vm.transmit(packet_of(100, 5));
  sim.run_to_completion();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(peer.unrouted(), 1);
}

}  // namespace
}  // namespace es2
