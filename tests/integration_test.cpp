// Integration tests: full stacks end-to-end, checking the paper's headline
// qualitative claims hold in the model, plus determinism.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/parallel.h"

namespace es2 {
namespace {

StreamOptions quick_stream(Es2Config cfg, Proto proto, bool vm_sends) {
  StreamOptions o;
  o.config = cfg;
  o.proto = proto;
  o.msg_size = 1024;
  o.vm_sends = vm_sends;
  o.warmup = msec(100);
  o.measure = msec(300);
  return o;
}

TEST(Integration, PiEliminatesInterruptExits) {
  const StreamResult base =
      run_stream(quick_stream(Es2Config::baseline(), Proto::kTcp, true));
  const StreamResult pi =
      run_stream(quick_stream(Es2Config::pi(), Proto::kTcp, true));
  // Baseline: interrupt delivery + completion exits present.
  EXPECT_GT(base.exits.interrupt_delivery, 5000);
  EXPECT_GT(base.exits.interrupt_completion, 10000);
  // PI: both gone (Table I's PI row).
  EXPECT_EQ(pi.exits.interrupt_delivery, 0);
  EXPECT_EQ(pi.exits.interrupt_completion, 0);
  // And the guest gets more useful time.
  EXPECT_GT(pi.exits.tig_percent, base.exits.tig_percent + 3);
}

TEST(Integration, DeliveryExitsFewerThanCompletionExits) {
  // Paper Table I: delivery may be skipped when the vCPU is already in
  // host mode, completion (EOI) never is.
  const StreamResult base =
      run_stream(quick_stream(Es2Config::baseline(), Proto::kTcp, true));
  EXPECT_LT(base.exits.interrupt_delivery, base.exits.interrupt_completion);
}

TEST(Integration, PiIncreasesIoRequestExits) {
  // Table I: removing interrupt exits speeds the guest up, producing MORE
  // I/O request exits (70k -> 85k in the paper).
  const StreamResult base =
      run_stream(quick_stream(Es2Config::baseline(), Proto::kTcp, true));
  const StreamResult pi =
      run_stream(quick_stream(Es2Config::pi(), Proto::kTcp, true));
  EXPECT_GT(pi.exits.io_instruction, base.exits.io_instruction);
}

TEST(Integration, HybridCollapsesIoExitsTcp) {
  const StreamResult pi =
      run_stream(quick_stream(Es2Config::pi(), Proto::kTcp, true));
  const StreamResult pih =
      run_stream(quick_stream(Es2Config::pi_h(4), Proto::kTcp, true));
  EXPECT_LT(pih.exits.io_instruction, pi.exits.io_instruction / 3);
  EXPECT_GT(pih.exits.tig_percent, 95.0);  // paper: 97.5%
  EXPECT_GT(pih.throughput_mbps, pi.throughput_mbps);
}

TEST(Integration, HybridCollapsesIoExitsUdp) {
  auto opts = quick_stream(Es2Config::pi_h(8), Proto::kUdp, true);
  opts.msg_size = 256;
  const StreamResult pih = run_stream(opts);
  EXPECT_LT(pih.exits.io_instruction, 1000);
  EXPECT_GT(pih.exits.tig_percent, 99.0);  // paper: 99.7%
}

TEST(Integration, QuotaMonotonicityUdp) {
  // Fig. 4a: smaller quota -> fewer I/O-instruction exits.
  double prev = 1e18;
  for (const int quota : {64, 16, 8}) {
    auto opts = quick_stream(Es2Config::pi_h(quota), Proto::kUdp, true);
    opts.msg_size = 256;
    const StreamResult r = run_stream(opts);
    EXPECT_LE(r.exits.io_instruction, prev + 2000.0) << "quota " << quota;
    prev = r.exits.io_instruction;
  }
  EXPECT_LT(prev, 10000.0);  // quota 8: nearly none
}

TEST(Integration, UdpReceiveHasNoIoExits) {
  // Fig. 5b: UDP receive is unidirectional — no guest I/O requests.
  const StreamResult r =
      run_stream(quick_stream(Es2Config::pi(), Proto::kUdp, false));
  EXPECT_LT(r.exits.io_instruction, 200);
  EXPECT_GT(r.exits.tig_percent, 99.0);
}

TEST(Integration, NapiModeratesReceiveInterrupts) {
  const StreamResult r =
      run_stream(quick_stream(Es2Config::baseline(), Proto::kUdp, false));
  // Interrupt rate far below the packet rate.
  EXPECT_LT(r.guest_irqs_per_sec, r.packets_per_sec / 4);
}

TEST(Integration, RedirectionCutsPingRtt) {
  PingOptions base;
  base.config = Es2Config::pi_h();
  base.samples = 40;
  base.interval = msec(60);
  PingOptions full = base;
  full.config = Es2Config::pi_h_r();
  const PingResult rb = run_ping(base);
  const PingResult rf = run_ping(full);
  // Fig. 7: without redirection RTT rides the scheduling delay (ms);
  // with it, the median is near-zero.
  EXPECT_GT(rb.rtt.p50(), msec(1) / 2);
  EXPECT_LT(rf.rtt.p50(), msec(1) / 2);
  EXPECT_LT(rf.rtt.mean(), rb.rtt.mean());
}

TEST(Integration, FullEs2BeatsBaselineOnApps) {
  MemcachedOptions mb;
  mb.config = Es2Config::baseline();
  mb.warmup = msec(200);
  mb.measure = msec(500);
  MemcachedOptions mf = mb;
  mf.config = Es2Config::pi_h_r();
  const MemcachedResult rb = run_memcached(mb);
  const MemcachedResult rf = run_memcached(mf);
  EXPECT_GT(rf.ops_per_sec, rb.ops_per_sec);

  ApacheOptions ab;
  ab.config = Es2Config::baseline();
  ab.warmup = msec(200);
  ab.measure = msec(500);
  ApacheOptions af = ab;
  af.config = Es2Config::pi_h_r();
  const ApacheResult arb = run_apache(ab);
  const ApacheResult arf = run_apache(af);
  EXPECT_GT(arf.requests_per_sec, arb.requests_per_sec);
}

TEST(Integration, HttperfKneeLaterWithEs2) {
  HttperfOptions ob;
  ob.config = Es2Config::baseline();
  ob.rate_per_sec = 2000;
  ob.duration = sec(1);
  HttperfOptions oe = ob;
  oe.config = Es2Config::pi_h_r();
  const HttperfResult rb = run_httperf(ob);
  const HttperfResult re = run_httperf(oe);
  // At 2000 conn/s the baseline is past its knee, full ES2 is not.
  EXPECT_GT(rb.avg_connect_ms, re.avg_connect_ms);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto opts = quick_stream(Es2Config::pi_h(4), Proto::kTcp, true);
  opts.seed = 77;
  const StreamResult a = run_stream(opts);
  const StreamResult b = run_stream(opts);
  EXPECT_EQ(a.exits.total, b.exits.total);
  EXPECT_EQ(a.packets_per_sec, b.packets_per_sec);
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.kicks_per_sec, b.kicks_per_sec);
}

TEST(Integration, SeedChangesDetails) {
  auto opts = quick_stream(Es2Config::baseline(), Proto::kTcp, true);
  opts.seed = 1;
  const StreamResult a = run_stream(opts);
  opts.seed = 2;
  const StreamResult b = run_stream(opts);
  EXPECT_NE(a.exits.total, b.exits.total);
  // But the macroscopic behaviour is stable.
  EXPECT_NEAR(a.exits.tig_percent, b.exits.tig_percent, 3.0);
}

TEST(Integration, ParallelRunnerMatchesSerial) {
  auto opts = quick_stream(Es2Config::pi(), Proto::kUdp, true);
  const StreamResult serial = run_stream(opts);
  std::vector<StreamResult> results(3);
  parallel_for(3, [&](int i) { results[static_cast<size_t>(i)] = run_stream(opts); }, 3);
  for (const auto& r : results) {
    EXPECT_EQ(r.exits.total, serial.exits.total);
    EXPECT_EQ(r.throughput_mbps, serial.throughput_mbps);
  }
}

TEST(Integration, NoPacketLossInMicroWorlds) {
  for (const bool sends : {true, false}) {
    const StreamResult r =
        run_stream(quick_stream(Es2Config::pi_h_r(), Proto::kTcp, sends));
    EXPECT_EQ(r.rx_dropped, 0) << (sends ? "send" : "recv");
  }
}

}  // namespace
}  // namespace es2
