// Snapshot / restore / resume tests: es2-snap-v1 byte stability, the
// epoch-hash determinism oracle, sweep checkpoints, and self-healing
// resume. The headline guarantees:
//
//   * serialize -> load round-trips byte-exactly, and corruption in any
//     region (magic, body, tail) is detected, never silently accepted;
//   * two same-seed worlds driven through the same span serialize to
//     byte-identical images and identical epoch-hash series;
//   * a sweep resumed from checkpoints reproduces the uninterrupted
//     sweep's reports byte-for-byte, replaying finished cells and
//     re-running failed ones.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/netperf.h"
#include "harness/checkpoint.h"
#include "harness/experiments.h"
#include "harness/runner.h"
#include "harness/testbed.h"
#include "metrics/metrics.h"
#include "snapshot/snapshot.h"
#include "snapshot/state_hash.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// SnapshotWriter / SnapshotReader
// ---------------------------------------------------------------------------

class ToyComponent final : public Snapshottable {
 public:
  explicit ToyComponent(std::uint64_t salt) : salt_(salt) {}
  void snapshot_state(SnapshotWriter& w) const override {
    w.put_u8(7);
    w.put_bool(true);
    w.put_u32(0xDEADBEEF);
    w.put_u64(salt_);
    w.put_i64(-42);
    w.put_f64(3.140625);
    w.put_string("toy");
  }

 private:
  std::uint64_t salt_;
};

TEST(SnapshotFormat, RoundTripsEveryFieldType) {
  SnapshotWriter w;
  w.begin_section("alpha");
  ToyComponent(11).snapshot_state(w);
  w.begin_section("beta");
  w.put_string("");
  w.put_f64(-0.0);
  w.put_u64(~0ull);

  const std::string image = w.serialize();
  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.load(image, &error)) << error;
  ASSERT_EQ(r.section_count(), 2u);
  EXPECT_EQ(r.section_name(0), "alpha");
  EXPECT_EQ(r.section_name(1), "beta");

  ASSERT_TRUE(r.seek("alpha"));
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 11u);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_f64(), 3.140625);
  EXPECT_EQ(r.get_string(), "toy");
  EXPECT_TRUE(r.ok());

  ASSERT_TRUE(r.seek("beta"));
  EXPECT_EQ(r.get_string(), "");
  const double neg_zero = r.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // -0.0 bit pattern preserved
  EXPECT_EQ(r.get_u64(), ~0ull);
  EXPECT_FALSE(r.seek("gamma"));
  EXPECT_TRUE(r.seek("alpha"));  // re-seek rewinds

  // Writer and reader agree on both digests.
  EXPECT_EQ(r.world_hash(), w.world_hash());
  EXPECT_EQ(r.section_hash(0), w.section_hash(0));
  EXPECT_EQ(r.section_hash(1), w.section_hash(1));
}

TEST(SnapshotFormat, SerializeIsDeterministic) {
  auto build = [] {
    SnapshotWriter w;
    w.begin_section("a");
    ToyComponent(1).snapshot_state(w);
    w.begin_section("b");
    ToyComponent(2).snapshot_state(w);
    return w.serialize();
  };
  EXPECT_EQ(build(), build());
}

TEST(SnapshotFormat, RejectsCorruption) {
  SnapshotWriter w;
  w.begin_section("alpha");
  ToyComponent(5).snapshot_state(w);
  const std::string image = w.serialize();
  std::string error;

  SnapshotReader r;
  EXPECT_FALSE(r.load("short", &error));
  EXPECT_EQ(error, "truncated: shorter than header + checksum");

  std::string bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_FALSE(r.load(bad_magic, &error));
  EXPECT_EQ(error, "bad magic: not an es2-snap file");

  std::string flipped = image;
  flipped[image.size() / 2] =
      static_cast<char>(flipped[image.size() / 2] ^ 0x40);
  EXPECT_FALSE(r.load(flipped, &error));
  EXPECT_EQ(error, "checksum mismatch: snapshot corrupted");

  std::string truncated = image.substr(0, image.size() - 9);
  truncated += image.substr(image.size() - 8);  // keep a (stale) tail
  EXPECT_FALSE(r.load(truncated, &error));
  EXPECT_EQ(error, "checksum mismatch: snapshot corrupted");

  // A version bump must be rejected even when the checksum is valid.
  std::string vbump = image;
  vbump[sizeof(SnapshotWriter::kMagic)] = 2;  // version u32 LE, lo byte
  const std::size_t body = vbump.size() - 8;
  const std::uint64_t sum = fnv1a(vbump.data(), body);
  for (int i = 0; i < 8; ++i)
    vbump[body + static_cast<std::size_t>(i)] =
        static_cast<char>(sum >> (8 * i));
  EXPECT_FALSE(r.load(vbump, &error));
  EXPECT_EQ(error, "unsupported version");
}

TEST(SnapshotFormat, ReaderOkTripsOnOverread) {
  SnapshotWriter w;
  w.begin_section("s");
  w.put_u32(1);
  SnapshotReader r;
  ASSERT_TRUE(r.load(w.serialize(), nullptr));
  ASSERT_TRUE(r.seek("s"));
  EXPECT_EQ(r.get_u32(), 1u);
  EXPECT_TRUE(r.ok());
  (void)r.get_u64();  // past the end of the section
  EXPECT_FALSE(r.ok());
}

TEST(SnapshotFormat, RngStateRoundTrip) {
  Rng rng = Rng::stream(99, "roundtrip");
  (void)rng.next_u64();
  SnapshotWriter w;
  w.begin_section("rng");
  snapshot_rng(w, rng);
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(rng.next_u64());

  SnapshotReader r;
  ASSERT_TRUE(r.load(w.serialize(), nullptr));
  ASSERT_TRUE(r.seek("rng"));
  Rng::State st{};
  for (auto& word : st.s) word = r.get_u64();
  Rng restored(1);
  restored.restore(st);
  for (std::uint64_t v : expect) EXPECT_EQ(restored.next_u64(), v);
}

// ---------------------------------------------------------------------------
// WorldSnapshotter / EpochHashLog / divergence
// ---------------------------------------------------------------------------

TEST(WorldSnapshotter, HashesComponentsInRegistrationOrder) {
  ToyComponent a(1), b(2);
  WorldSnapshotter world;
  world.add("first", a);
  world.add("second", b);
  EXPECT_EQ(world.size(), 2u);
  EXPECT_EQ(world.names(), (std::vector<std::string>{"first", "second"}));

  const auto hashes = world.component_hashes();
  ASSERT_EQ(hashes.size(), 2u);
  EXPECT_NE(hashes[0], hashes[1]);  // different salts -> different digests

  // Same states re-hashed give the same digests (scratch writer reuse).
  EXPECT_EQ(world.world_hash(), world.world_hash());
  EXPECT_EQ(world.serialize(), world.serialize());
}

TEST(EpochHashLog, RecordsAndCapsEpochs) {
  ToyComponent a(3);
  WorldSnapshotter world;
  world.add("only", a);
  SnapshotOptions opts;
  opts.max_epochs = 4;
  EpochHashLog log(world, opts, /*seed=*/7);
  EXPECT_EQ(log.last_world_hash(), 0u);
  for (int i = 0; i < 10; ++i) log.record(msec(10) * (i + 1));
  EXPECT_EQ(log.epochs(), 4u);  // capped, prefix kept
  EXPECT_EQ(log.series().entries.front().t, msec(10));
  EXPECT_EQ(log.last_world_hash(), world.world_hash());
  EXPECT_EQ(log.series().seed, 7u);
}

HashSeries tiny_series() {
  HashSeries s;
  s.seed = 1;
  s.epoch = msec(10);
  s.component_names = {"sim", "cfs"};
  for (int i = 0; i < 5; ++i) {
    EpochHash e;
    e.t = msec(10) * (i + 1);
    e.components = {100u + static_cast<std::uint64_t>(i),
                    200u + static_cast<std::uint64_t>(i)};
    e.world = e.components[0] ^ e.components[1];
    s.entries.push_back(e);
  }
  return s;
}

TEST(HashSeries, JsonRoundTrip) {
  const HashSeries s = tiny_series();
  HashSeries back;
  std::string error;
  ASSERT_TRUE(HashSeries::parse(s.to_json_text(), &back, &error)) << error;
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.epoch, s.epoch);
  EXPECT_EQ(back.component_names, s.component_names);
  ASSERT_EQ(back.entries.size(), s.entries.size());
  for (std::size_t i = 0; i < s.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].t, s.entries[i].t);
    EXPECT_EQ(back.entries[i].world, s.entries[i].world);
    EXPECT_EQ(back.entries[i].components, s.entries[i].components);
  }
  // Round-tripped series compares identical.
  EXPECT_EQ(find_divergence(s, back).epoch, -1);
}

TEST(HashSeries, BisectorNamesTheGuiltyComponent) {
  const HashSeries a = tiny_series();
  HashSeries b = a;
  b.entries[3].components[1] ^= 0x1;  // cfs splits at epoch 3
  b.entries[3].world ^= 0x1;

  const Divergence d = find_divergence(a, b);
  EXPECT_EQ(d.epoch, 3);
  EXPECT_EQ(d.t, a.entries[3].t);
  ASSERT_EQ(d.components.size(), 1u);
  EXPECT_EQ(d.components[0], "cfs");

  HashSeries other = a;
  other.component_names = {"sim", "vhost"};
  EXPECT_EQ(find_divergence(a, other).epoch, -2);
  HashSeries period = a;
  period.epoch = msec(20);
  EXPECT_EQ(find_divergence(a, period).epoch, -2);
}

// ---------------------------------------------------------------------------
// Whole-world determinism
// ---------------------------------------------------------------------------

// Builds the micro PI+H+R world with one TCP stream, runs `span`, and
// returns the serialized es2-snap-v1 image.
std::string run_and_serialize(std::uint64_t seed, SimDuration span) {
  TestbedOptions to;
  to.config = Es2Config::pi_h_r();
  to.seed = seed;
  Testbed tb(to);
  NetperfSender tx(tb.guest(), tb.frontend(), 100, Proto::kTcp, 1024, 0);
  tb.guest().add_task(tx);
  PeerStreamReceiver rx(tb.peer(), 100, Proto::kTcp);
  tb.snapshotter().add("app/netperf-tx0", tx);
  tb.snapshotter().add("app/peer-rx0", rx);
  tb.start();
  tb.sim().run_for(span);
  return tb.snapshotter().serialize();
}

TEST(Determinism, SameSeedWorldsSerializeByteIdentically) {
  const std::string a = run_and_serialize(1, msec(80));
  const std::string b = run_and_serialize(1, msec(80));
  EXPECT_EQ(a, b);
  const std::string c = run_and_serialize(2, msec(80));
  EXPECT_NE(a, c);  // the seed must actually matter

  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.load(a, &error)) << error;
  EXPECT_GE(r.section_count(), 10u);  // sim, cfs, vm, guest, vhost, ...
}

TEST(Determinism, ResumeEquivalenceAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    StreamOptions o;
    o.config = Es2Config::pi_h_r();
    o.seed = seed;
    o.warmup = msec(50);
    o.measure = msec(150);
    o.snapshot.hash_epochs = true;
    o.snapshot.epoch = msec(10);
    const StreamResult a = run_stream(o);
    const StreamResult b = run_stream(o);
    ASSERT_NE(a.hashes, nullptr);
    ASSERT_NE(b.hashes, nullptr);
    EXPECT_GT(a.hashes->entries.size(), 10u);

    const Divergence d = find_divergence(*a.hashes, *b.hashes);
    EXPECT_EQ(d.epoch, -1) << "seed " << seed << ": " << d.detail;
    EXPECT_EQ(a.hashes->to_json_text(), b.hashes->to_json_text());
    EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  }
}

TEST(Determinism, ExtraQueuePairRingsAreCaptured) {
  // Multi-queue devices serialize every pair's rings, not just the legacy
  // pair-0 members: mutating only an extra pair's ring must change the
  // backend section bytes.
  TestbedOptions to;
  to.config = Es2Config::pi_h_r();
  to.vhost_params.num_queue_pairs = 4;
  Testbed tb(std::move(to));
  SnapshotWriter w0;
  w0.begin_section("vhost");
  tb.backend().snapshot_state(w0);
  const std::string before = w0.serialize();
  // (TX: the frontend pre-posts every pair's RX ring to capacity at boot.)
  ASSERT_TRUE(tb.backend().tx_vq(2).add_avail({nullptr, 64}));
  SnapshotWriter w1;
  w1.begin_section("vhost");
  tb.backend().snapshot_state(w1);
  EXPECT_NE(before, w1.serialize());
}

TEST(Determinism, SameSeedMultiQueuePackedWorldsSerializeByteIdentically) {
  // The queue-pair round-trip at world scope: a packed 4-pair world with
  // two RSS-steered streams serializes to the same es2-snap-v1 image on
  // every same-seed run, and the image loads cleanly.
  auto run = [](std::uint64_t seed) {
    TestbedOptions to;
    to.config = Es2Config::pi_h_r();
    to.seed = seed;
    to.vhost_params.num_queue_pairs = 4;
    to.vhost_params.ring_layout = RingLayout::kPacked;
    Testbed tb(std::move(to));
    // Flows 100 and 104 steer to different RSS pairs (see the ring
    // conformance suite), so two pairs carry live traffic.
    NetperfSender tx0(tb.guest(), tb.frontend(), 100, Proto::kTcp, 1024, 0);
    NetperfSender tx1(tb.guest(), tb.frontend(), 104, Proto::kTcp, 1024, 0);
    tb.guest().add_task(tx0);
    tb.guest().add_task(tx1);
    PeerStreamReceiver rx0(tb.peer(), 100, Proto::kTcp);
    PeerStreamReceiver rx1(tb.peer(), 104, Proto::kTcp);
    tb.snapshotter().add("app/netperf-tx0", tx0);
    tb.snapshotter().add("app/netperf-tx1", tx1);
    tb.snapshotter().add("app/peer-rx0", rx0);
    tb.snapshotter().add("app/peer-rx1", rx1);
    tb.start();
    tb.sim().run_for(msec(80));
    return tb.snapshotter().serialize();
  };
  const std::string a = run(1);
  const std::string b = run(1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run(2));
  SnapshotReader r;
  std::string error;
  ASSERT_TRUE(r.load(a, &error)) << error;
  EXPECT_GE(r.section_count(), 10u);
}

TEST(Determinism, EpochHashingIsPassive) {
  StreamOptions o;
  o.config = Es2Config::pi_h_r();
  o.seed = 1;
  o.warmup = msec(50);
  o.measure = msec(150);
  const StreamResult plain = run_stream(o);
  o.snapshot.hash_epochs = true;
  o.snapshot.epoch = msec(5);
  const StreamResult hashed = run_stream(o);
  // Hashing draws no RNG and schedules nothing the model observes:
  // the measured trajectory is unchanged.
  EXPECT_EQ(plain.throughput_mbps, hashed.throughput_mbps);
  EXPECT_EQ(plain.packets_per_sec, hashed.packets_per_sec);
  EXPECT_EQ(plain.kicks_per_sec, hashed.kicks_per_sec);
  EXPECT_EQ(plain.hashes, nullptr);
  ASSERT_NE(hashed.hashes, nullptr);
}

// ---------------------------------------------------------------------------
// Checkpoints and self-healing resume
// ---------------------------------------------------------------------------

TEST(Checkpoint, SanitizeIsFilesystemSafeAndCollisionFree) {
  const std::string a = CheckpointDir::sanitize("loss=0.1%/stack PI+H");
  for (char c : a) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-')
        << "unsafe char in " << a;
  }
  // Names that sanitize to the same stem stay distinct via the FNV suffix.
  EXPECT_NE(CheckpointDir::sanitize("a/b"), CheckpointDir::sanitize("a+b"));
  EXPECT_EQ(CheckpointDir::sanitize("x"), CheckpointDir::sanitize("x"));
}

TEST(Checkpoint, CellJsonRoundTrip) {
  CellCheckpoint cell;
  cell.report.name = "loss=1% PI+H";
  cell.report.status = ScenarioStatus::kNoProgress;
  cell.report.sim_now = msec(123);
  cell.report.events = 456789;
  cell.report.detail = "flat across 8 windows";
  cell.report.telemetry = "vhost.kicks +0";
  cell.report.artifact = "{\"goodput_mbps\":123.456}";
  cell.report.attempts = 3;

  CellCheckpoint back;
  std::string error;
  ASSERT_TRUE(CellCheckpoint::parse(cell.to_json_text(), &back, &error))
      << error;
  EXPECT_EQ(back.report.name, cell.report.name);
  EXPECT_EQ(back.report.status, cell.report.status);
  EXPECT_EQ(back.report.sim_now, cell.report.sim_now);
  EXPECT_EQ(back.report.events, cell.report.events);
  EXPECT_EQ(back.report.detail, cell.report.detail);
  EXPECT_EQ(back.report.telemetry, cell.report.telemetry);
  EXPECT_EQ(back.report.artifact, cell.report.artifact);
  EXPECT_EQ(back.report.attempts, cell.report.attempts);
  EXPECT_FALSE(back.report.resumed);

  EXPECT_FALSE(CellCheckpoint::parse("{}", &back, &error));
  EXPECT_FALSE(CellCheckpoint::parse("not json", &back, &error));
}

TEST(Checkpoint, StoreAndLoadDirectory) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "es2_ckpt_dir").string();
  std::filesystem::remove_all(dir);

  CheckpointDir store(dir);
  ASSERT_TRUE(store.enabled());
  CellCheckpoint cell;
  cell.report.name = "cell a";
  cell.report.artifact = "{\"v\":1}";
  std::string error;
  ASSERT_TRUE(store.store(cell, &error)) << error;
  cell.report.name = "cell b";
  cell.report.status = ScenarioStatus::kException;
  ASSERT_TRUE(store.store(cell, &error)) << error;

  CheckpointDir load(dir);
  EXPECT_EQ(load.load(), 2u);
  ASSERT_NE(load.find("cell a"), nullptr);
  ASSERT_NE(load.find("cell b"), nullptr);
  EXPECT_EQ(load.find("cell a")->report.artifact, "{\"v\":1}");
  EXPECT_EQ(load.find("cell b")->report.status, ScenarioStatus::kException);
  EXPECT_EQ(load.find("cell c"), nullptr);

  CheckpointDir disabled("");
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.load(), 0u);
  EXPECT_TRUE(disabled.store(cell, &error));  // trivially succeeds

  std::filesystem::remove_all(dir);
}

TEST(Runner, BoundedRetriesHealFlakyCellsAndAreCounted) {
  MetricsRegistry registry;
  RunnerOptions ro;
  ro.threads = 1;
  ro.max_attempts = 3;
  ro.registry = &registry;
  ExperimentRunner runner(ro);

  std::atomic<int> flaky_runs{0};
  runner.add("flaky", [&](const std::string& name) {
    ScenarioReport rep;
    rep.name = name;
    if (flaky_runs.fetch_add(1) < 2) {
      rep.status = ScenarioStatus::kNoProgress;
      rep.detail = "transient";
    }
    return rep;
  });
  runner.add("steady", [&](const std::string& name) {
    ScenarioReport rep;
    rep.name = name;
    return rep;
  });
  runner.add("hopeless", [&](const std::string& name) -> ScenarioReport {
    throw std::runtime_error("always dies: " + name);
  });
  runner.run_all();

  ASSERT_EQ(runner.reports().size(), 3u);
  EXPECT_TRUE(runner.reports()[0].ok());
  EXPECT_EQ(runner.reports()[0].attempts, 3);
  EXPECT_TRUE(runner.reports()[1].ok());
  EXPECT_EQ(runner.reports()[1].attempts, 1);
  EXPECT_EQ(runner.reports()[2].status, ScenarioStatus::kException);
  EXPECT_EQ(runner.reports()[2].attempts, 3);
  EXPECT_FALSE(runner.all_ok());
  EXPECT_EQ(runner.exit_code(), 1);

  // flaky burned 2 retries, hopeless burned 2: counter and accessor agree.
  EXPECT_EQ(runner.retries(), 4);
  EXPECT_EQ(registry.counter("runner.retries").value(), 4);
}

TEST(Runner, ResumeReplaysFinishedCellsAndRerunsFailedOnes) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "es2_resume_dir").string();
  std::filesystem::remove_all(dir);

  std::atomic<int> good_runs{0};
  std::atomic<int> bad_runs{0};
  std::atomic<bool> healed{false};
  auto add_cells = [&](ExperimentRunner& r) {
    r.add("good", [&](const std::string& name) {
      good_runs.fetch_add(1);
      ScenarioReport rep;
      rep.name = name;
      rep.sim_now = msec(500);
      rep.events = 1234;
      rep.artifact = "{\"goodput\":42.5}";
      return rep;
    });
    r.add("bad", [&](const std::string& name) {
      bad_runs.fetch_add(1);
      ScenarioReport rep;
      rep.name = name;
      if (!healed.load()) {
        rep.status = ScenarioStatus::kNoProgress;
        rep.detail = "wedged";
      }
      return rep;
    });
  };

  {
    RunnerOptions ro;
    ro.threads = 1;
    ro.checkpoint_dir = dir;
    ExperimentRunner first(ro);
    add_cells(first);
    first.run_all();
    EXPECT_FALSE(first.all_ok());
    EXPECT_EQ(first.resumed_cells(), 0);
  }
  EXPECT_EQ(good_runs.load(), 1);
  EXPECT_EQ(bad_runs.load(), 1);

  // The environment is "fixed" before the resume; the failed cell must be
  // re-run (self-healing), the finished one replayed from disk.
  healed.store(true);
  RunnerOptions ro;
  ro.threads = 1;
  ro.checkpoint_dir = dir;
  ro.resume = true;
  ExperimentRunner second(ro);
  add_cells(second);
  second.run_all();

  EXPECT_EQ(good_runs.load(), 1);  // replayed, not re-run
  EXPECT_EQ(bad_runs.load(), 2);   // re-run and healed
  EXPECT_TRUE(second.all_ok());
  EXPECT_EQ(second.resumed_cells(), 1);

  ASSERT_EQ(second.reports().size(), 2u);
  const ScenarioReport& good = second.reports()[0];
  EXPECT_TRUE(good.resumed);
  EXPECT_EQ(good.sim_now, msec(500));
  EXPECT_EQ(good.events, 1234u);
  EXPECT_EQ(good.artifact, "{\"goodput\":42.5}");
  EXPECT_FALSE(second.reports()[1].resumed);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace es2
