// Metrics subsystem tests: registry identity and lookup, deterministic
// sampler cadence, export byte-identity and round-trips, passivity of the
// sampling path, zero steady-state allocation, histogram edge cases, and
// the bench-report schema's regression-gate logic.
//
// This binary links es2_alloc_hook, so the allocation assertions measure
// real global operator new traffic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/alloc_hook.h"
#include "harness/experiments.h"
#include "harness/testbed.h"
#include "metrics/alloc_metrics.h"
#include "metrics/bench_schema.h"
#include "metrics/export.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "sim/simulator.h"
#include "stats/histogram.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// Registry: identity, labels, lookup
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CanonicalKeySortsLabels) {
  EXPECT_EQ(metric_key("vm.exits", {}), "vm.exits");
  EXPECT_EQ(metric_key("vm.exits", {{"cause", "hlt"}}), "vm.exits{cause=hlt}");
  // Label order in the argument does not matter: keys sort.
  EXPECT_EQ(metric_key("x", {{"b", "2"}, {"a", "1"}}), "x{a=1,b=2}");
  EXPECT_EQ(metric_key("x", {{"a", "1"}, {"b", "2"}}), "x{a=1,b=2}");
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("vm.exits", {{"cause", "io"}});
  Counter& b = reg.counter("vm.exits", {{"cause", "io"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  // Different labels make a different instrument.
  Counter& c = reg.counter("vm.exits", {{"cause", "hlt"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, FindByCanonicalKey) {
  MetricsRegistry reg;
  reg.counter("tcp.retransmits", {{"flow", "7"}}).add(3);
  reg.gauge("vq.depth").set(12);
  const MetricsRegistry::Instrument* rtx =
      reg.find("tcp.retransmits{flow=7}");
  ASSERT_NE(rtx, nullptr);
  EXPECT_EQ(rtx->kind, MetricKind::kCounter);
  EXPECT_EQ(rtx->counter.value(), 3);
  ASSERT_NE(reg.find("vq.depth"), nullptr);
  EXPECT_EQ(reg.find("vq.depth{core=0}"), nullptr);
  EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(MetricsRegistry, ProbeReadsThroughClosure) {
  MetricsRegistry reg;
  double level = 4.0;
  reg.probe("cfs.load", {{"core", "0"}}, [&level] { return level; });
  const MetricsRegistry::Instrument* p = reg.find("cfs.load{core=0}");
  ASSERT_NE(p, nullptr);
  std::size_t idx = reg.sorted_indices()[0];
  EXPECT_DOUBLE_EQ(reg.value(idx), 4.0);
  level = 9.0;
  EXPECT_DOUBLE_EQ(reg.value(idx), 9.0);
}

TEST(MetricsRegistry, SortedIndicesAreExportOrder) {
  MetricsRegistry reg;
  reg.counter("b.second");
  reg.counter("a.first");
  reg.counter("c.third");
  const std::vector<std::size_t> order = reg.sorted_indices();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(reg.instrument(order[0]).key, "a.first");
  EXPECT_EQ(reg.instrument(order[1]).key, "b.second");
  EXPECT_EQ(reg.instrument(order[2]).key, "c.third");
}

// ---------------------------------------------------------------------------
// Sampler: deterministic cadence, ring retention, freeze semantics
// ---------------------------------------------------------------------------

TEST(MetricsSampler, TicksOnExactSimCadence) {
  Simulator sim(1);
  MetricsRegistry reg;
  Counter& events = reg.counter("events");
  PeriodicTimer work(sim, usec(100), [&events] { events.add(1); });
  work.start();
  SamplerOptions so;
  so.period = msec(1);
  MetricsSampler sampler(sim, reg, so);
  sampler.start();
  sim.run_for(msec(10));
  EXPECT_EQ(sampler.instruments(), 1u);
  EXPECT_EQ(sampler.total_samples(), 10u);
  ASSERT_EQ(sampler.frames(), 10u);
  for (std::size_t f = 0; f + 1 < sampler.frames(); ++f) {
    EXPECT_EQ(sampler.frame_time(f + 1) - sampler.frame_time(f), msec(1));
    // The counter grows by 10 work ticks per sample period.
    EXPECT_EQ(sampler.frame_value(f + 1, 0) - sampler.frame_value(f, 0), 10.0);
  }
}

TEST(MetricsSampler, RingEvictsOldestFrames) {
  Simulator sim(1);
  MetricsRegistry reg;
  reg.counter("x");
  SamplerOptions so;
  so.period = msec(1);
  so.ring_capacity = 4;
  MetricsSampler sampler(sim, reg, so);
  sampler.start();
  sim.run_for(msec(10));
  EXPECT_EQ(sampler.total_samples(), 10u);
  ASSERT_EQ(sampler.frames(), 4u);
  // Oldest retained frame is tick #7 of 10 (1-indexed by period).
  EXPECT_EQ(sampler.frame_time(0), msec(7));
  EXPECT_EQ(sampler.frame_time(3), msec(10));
}

TEST(MetricsSampler, InstrumentsRegisteredAfterStartAreNotSampled) {
  Simulator sim(1);
  MetricsRegistry reg;
  reg.counter("early");
  MetricsSampler sampler(sim, reg, {});
  sampler.start();
  reg.counter("late").add(5);
  sim.run_for(msec(4));
  EXPECT_EQ(sampler.instruments(), 1u);  // frozen at start()
  // ... but the final snapshot still sees the late instrument.
  const std::vector<MetricSample> snap = snapshot(reg);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[1].name, "late");
  EXPECT_DOUBLE_EQ(snap[1].value, 5.0);
}

/// Same seed => byte-identical Prometheus, JSON and series exports, from a
/// full testbed run (guest timers, vhost worker, CFS all live).
TEST(MetricsSampler, SameSeedExportsAreByteIdentical) {
  auto run_once = [](std::uint64_t seed) {
    TestbedOptions o;
    o.config = Es2Config::pi();
    o.seed = seed;
    Testbed tb(o);
    tb.start();
    tb.sim().run_for(msec(30));
    const std::vector<MetricSample> snap = snapshot(tb.metrics());
    return std::make_tuple(to_prometheus_text(snap), to_json(snap),
                           series_to_json(tb.metrics(), *tb.sampler()),
                           series_to_csv(tb.metrics(), *tb.sampler()));
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  // A different seed must change the telemetry. The bare testbed is
  // seed-invariant (no traffic), so this leg drives a seeded stream
  // workload and compares its harvested snapshots.
  auto stream_json = [](std::uint64_t seed) {
    StreamOptions o;
    o.config = Es2Config::pi();
    o.seed = seed;
    o.warmup = msec(10);
    o.measure = msec(50);
    const StreamResult r = run_stream(o);
    return to_json(r.metrics->samples);
  };
  EXPECT_NE(stream_json(42), stream_json(43));
}

/// Passivity: running with the sampler on yields the same model results as
/// running with metrics disabled.
TEST(MetricsSampler, SamplingIsPassive) {
  StreamOptions o;
  o.config = Es2Config::pi();
  o.warmup = msec(50);
  o.measure = msec(150);
  o.metrics.enabled = true;
  const StreamResult on = run_stream(o);
  o.metrics.enabled = false;
  const StreamResult off = run_stream(o);
  EXPECT_DOUBLE_EQ(on.throughput_mbps, off.throughput_mbps);
  EXPECT_DOUBLE_EQ(on.packets_per_sec, off.packets_per_sec);
  EXPECT_DOUBLE_EQ(on.exits.total, off.exits.total);
  EXPECT_EQ(on.rx_dropped, off.rx_dropped);
  // The metrics-off run still harvests a final snapshot (registry is
  // always populated); only the time series differs.
  ASSERT_NE(off.metrics, nullptr);
  EXPECT_EQ(off.metrics->sampler_frames, 0u);
  EXPECT_GT(on.metrics->sampler_frames, 0u);
}

// ---------------------------------------------------------------------------
// Zero steady-state allocation
// ---------------------------------------------------------------------------

TEST(MetricsSampler, SteadyStateSamplingAllocatesNothing) {
  Simulator sim(1);
  MetricsRegistry reg;
  Counter& events = reg.counter("events", {{"kind", "work"}});
  std::uint64_t side = 0;
  reg.probe("side", [&side] { return static_cast<double>(side); });
  register_alloc_metrics(reg);
  PeriodicTimer work(sim, usec(50), [&] {
    events.add(1);
    ++side;
  });
  work.start();
  SamplerOptions so;
  so.period = usec(500);
  so.ring_capacity = 64;
  MetricsSampler sampler(sim, reg, so);
  sampler.start();
  // Settle: first ticks may fault in pooled event slabs.
  sim.run_for(msec(50));
  test::AllocationCounter c;
  sim.run_for(msec(100));  // 200 samples, ring wraps repeatedly
  EXPECT_EQ(c.delta(), 0) << "sampler steady state must not allocate";
  EXPECT_GE(sampler.total_samples(), 200u);
}

TEST(AllocMetrics, RegistersProcessCounters) {
  MetricsRegistry reg;
  register_alloc_metrics(reg);
  const MetricsRegistry::Instrument* allocs = reg.find("process.allocs");
  ASSERT_NE(allocs, nullptr);
  EXPECT_EQ(allocs->kind, MetricKind::kProbe);
  const std::vector<MetricSample> before = snapshot(reg);
  // Force an allocation and require the probe to see it.
  std::vector<int>* sink = new std::vector<int>(100);
  const std::vector<MetricSample> after = snapshot(reg);
  delete sink;
  EXPECT_GT(after[1].value, before[1].value);       // process.allocs
  EXPECT_GT(after[0].value, before[0].value);       // process.alloc_bytes
  EXPECT_EQ(after[0].name, "process.alloc_bytes");  // sorted order
}

// ---------------------------------------------------------------------------
// Histogram edge cases
// ---------------------------------------------------------------------------

TEST(HistogramEdge, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramEdge, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  // Log-bucketed: quantiles land in the recorded value's bucket (~3%).
  EXPECT_NEAR(static_cast<double>(h.p50()), 1000.0, 1000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.p99()), 1000.0, 1000.0 * 0.05);
}

TEST(HistogramEdge, MergeDisjointRanges) {
  Histogram low, high;
  for (int i = 0; i < 100; ++i) low.record(10);
  for (int i = 0; i < 100; ++i) high.record(1000000);
  low.merge(high);
  EXPECT_EQ(low.count(), 200);
  EXPECT_EQ(low.min(), 10);
  EXPECT_EQ(low.max(), 1000000);
  // Median sits at the low cluster, p99 at the high one.
  EXPECT_LE(low.p50(), 11);
  EXPECT_NEAR(static_cast<double>(low.p99()), 1e6, 1e6 * 0.05);
}

// ---------------------------------------------------------------------------
// Exporters: Prometheus <-> JSON round trip
// ---------------------------------------------------------------------------

TEST(MetricsExport, PrometheusIsPureFunctionOfJson) {
  TestbedOptions o;
  o.config = Es2Config::pi_h(4);
  o.seed = 11;
  Testbed tb(o);
  tb.start();
  tb.sim().run_for(msec(20));
  const std::vector<MetricSample> snap = snapshot(tb.metrics());
  ASSERT_FALSE(snap.empty());

  const std::string json = to_json(snap);
  std::vector<MetricSample> reread;
  std::string error;
  ASSERT_TRUE(from_json(json, &reread, &error)) << error;
  ASSERT_EQ(reread.size(), snap.size());
  // Prometheus rendering of the round-tripped samples is byte-identical:
  // the exporters are pure functions of the sample list.
  EXPECT_EQ(to_prometheus_text(reread), to_prometheus_text(snap));
  // And a second JSON round trip is a fixed point.
  EXPECT_EQ(to_json(reread), json);
}

TEST(MetricsExport, TopDeltasNamesMovingMetrics) {
  Simulator sim(1);
  MetricsRegistry reg;
  Counter& busy = reg.counter("busy.counter");
  reg.counter("idle.counter");
  PeriodicTimer work(sim, usec(100), [&busy] { busy.add(7); });
  work.start();
  MetricsSampler sampler(sim, reg, {});
  sampler.start();
  sim.run_for(msec(20));
  const std::string top = top_metric_deltas(reg, sampler, 2);
  EXPECT_NE(top.find("busy.counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bench schema: gate logic
// ---------------------------------------------------------------------------

BenchReport sample_report() {
  BenchReport r("demo", true, 1);
  r.add("throughput", 100.0, 0.05);
  r.add("exits", 5000.0, 0.05);
  r.add_info("wall_seconds", 3.2);
  r.add_series("curve", {1, 2, 3, 4});
  return r;
}

TEST(BenchSchema, WithinToleranceOk) {
  BenchReport current = sample_report();
  current.add("throughput", 104.0, 0.05);  // +4% < 5%
  const BenchDiff d = diff_bench(sample_report(), current);
  EXPECT_TRUE(d.comparable);
  EXPECT_TRUE(d.ok()) << d.failures().empty();
}

TEST(BenchSchema, BeyondToleranceFailsAndNamesMetric) {
  BenchReport current = sample_report();
  current.add("throughput", 89.0, 0.05);  // -11% > 5%
  const BenchDiff d = diff_bench(sample_report(), current);
  EXPECT_FALSE(d.ok());
  const std::vector<std::string> failures = d.failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("throughput"), std::string::npos);
}

TEST(BenchSchema, InfoMetricsNeverGate) {
  BenchReport current = sample_report();
  current.add_info("wall_seconds", 96.0);  // 30x slower: reported, not failed
  EXPECT_TRUE(diff_bench(sample_report(), current).ok());
}

TEST(BenchSchema, MissingGatedMetricFails) {
  BenchReport current("demo", true, 1);
  current.add("throughput", 100.0, 0.05);
  // "exits" absent from the run.
  const BenchDiff d = diff_bench(sample_report(), current);
  EXPECT_FALSE(d.ok());
  ASSERT_EQ(d.missing.size(), 1u);
  EXPECT_EQ(d.missing[0], "exits");
}

TEST(BenchSchema, StampMismatchIsIncomparableFailure) {
  BenchReport current("demo", false, 1);  // fast=false vs baseline fast=true
  current.add("throughput", 100.0);
  current.add("exits", 5000.0);
  const BenchDiff d = diff_bench(sample_report(), current);
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.ok());
  EXPECT_NE(d.incomparable_why.find("stamp"), std::string::npos);
}

TEST(BenchSchema, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/BENCH_demo.json";
  ASSERT_TRUE(sample_report().write_file(path));
  BenchReport reread;
  std::string error;
  ASSERT_TRUE(BenchReport::read_file(path, &reread, &error)) << error;
  EXPECT_EQ(reread.bench(), "demo");
  EXPECT_TRUE(reread.fast());
  EXPECT_EQ(reread.seed(), 1u);
  const BenchMetric* m = reread.find("throughput");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 100.0);
  const std::vector<double>* s = reread.find_series("curve");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->size(), 4u);
  // A reread report diffs clean against the original.
  EXPECT_TRUE(diff_bench(sample_report(), reread).ok());
}

TEST(BenchSchema, SparklineRendersAndHandlesEdges) {
  EXPECT_EQ(sparkline({}), "");
  EXPECT_FALSE(sparkline({1, 2, 3, 4, 5}).empty());
  EXPECT_FALSE(sparkline({5, 5, 5}).empty());  // flat series
}

}  // namespace
}  // namespace es2
