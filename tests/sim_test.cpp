// Unit tests for the simulation kernel: event ordering, cancellation,
// deferred events, timers, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace es2 {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameInstantFiresInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5, [&order, i] { order.push_back(i); });
  }
  sim.run_until(5);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_until(100);
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int count = 0;
  EventHandle h = sim.at(10, [&] { ++count; });
  sim.run_until(100);
  EXPECT_EQ(count, 1);
  h.cancel();  // no-op after fire
  h.cancel();
  EXPECT_FALSE(h.pending());
  EventHandle empty;
  empty.cancel();  // empty handle is safe
}

TEST(Simulator, ClockAdvancesBeforeCallbackRuns) {
  // Regression test: a callback scheduling with defer() must land at its
  // own timestamp, not at the previous event's.
  Simulator sim;
  SimTime observed = -1;
  SimTime deferred_at = -1;
  sim.at(100, [&] {
    observed = sim.now();
    sim.defer([&] { deferred_at = sim.now(); });
  });
  sim.at(40, [] {});
  sim.run_until(1000);
  EXPECT_EQ(observed, 100);
  EXPECT_EQ(deferred_at, 100);
}

TEST(Simulator, DeferRunsAfterAlreadyQueuedSameInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.at(10, [&] {
    sim.defer([&] { order.push_back(2); });
  });
  sim.at(10, [&] { order.push_back(1); });
  sim.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunForAdvancesClockEvenWhenIdle) {
  Simulator sim;
  sim.run_for(msec(5));
  EXPECT_EQ(sim.now(), msec(5));
  sim.run_for(msec(5));
  EXPECT_EQ(sim.now(), msec(10));
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator sim;
  bool late = false;
  sim.at(200, [&] { late = true; });
  sim.run_until(100);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), 100);
  sim.run_until(300);
  EXPECT_TRUE(late);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.at(i, [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CascadingEventsWithinRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> cascade = [&] {
    if (++depth < 50) sim.after(10, cascade);
  };
  sim.after(10, cascade);
  sim.run_until(sec(1));
  EXPECT_EQ(depth, 50);
}

TEST(Simulator, NamedRngStreamsAreStableAcrossInstances) {
  Simulator a(99), b(99);
  Rng ra = a.make_rng("x");
  Rng rb = b.make_rng("x");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(PeriodicTimer, FiresAtPeriodUntilStopped) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, msec(10), [&] { ++fires; });
  timer.start();
  sim.run_until(msec(55));
  EXPECT_EQ(fires, 5);
  timer.stop();
  sim.run_until(msec(200));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, msec(1), [&] {
    if (++fires == 3) timer.stop();
  });
  timer.start();
  sim.run_until(msec(100));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, msec(1), [&] { ++fires; });
  timer.start();
  sim.run_until(msec(3));
  timer.stop();
  timer.start();
  sim.run_until(msec(6));
  EXPECT_GE(fires, 5);
}

}  // namespace
}  // namespace es2
