// Unit tests for interrupt hardware models: bitmaps, emulated LAPIC,
// vAPIC page + posted-interrupt descriptor, vector-space rules.
#include <gtest/gtest.h>

#include "apic/irr.h"
#include "apic/lapic.h"
#include "apic/vapic.h"
#include "apic/vectors.h"

namespace es2 {
namespace {

TEST(IrqBitmap, SetTestClear) {
  IrqBitmap b;
  EXPECT_FALSE(b.any());
  b.set(0x33);
  EXPECT_TRUE(b.test(0x33));
  EXPECT_TRUE(b.any());
  b.clear(0x33);
  EXPECT_FALSE(b.any());
}

TEST(IrqBitmap, HighestAcrossWords) {
  IrqBitmap b;
  EXPECT_EQ(b.highest(), -1);
  b.set(3);
  b.set(0x40);   // second word
  b.set(0xFF);   // top of fourth word
  EXPECT_EQ(b.highest(), 0xFF);
  b.clear(0xFF);
  EXPECT_EQ(b.highest(), 0x40);
}

TEST(IrqBitmap, PopHighestDrainsInPriorityOrder) {
  IrqBitmap b;
  b.set(0x31);
  b.set(0xEC);
  b.set(0x80);
  EXPECT_EQ(b.pop_highest(), 0xEC);
  EXPECT_EQ(b.pop_highest(), 0x80);
  EXPECT_EQ(b.pop_highest(), 0x31);
  EXPECT_FALSE(b.any());
}

TEST(IrqBitmap, CountsBits) {
  IrqBitmap b;
  for (int v = 0; v < 256; v += 17) b.set(static_cast<std::uint8_t>(v));
  EXPECT_EQ(b.count(), 16);
  b.reset();
  EXPECT_EQ(b.count(), 0);
}

TEST(Vectors, DeviceRangeExcludesSystemVectors) {
  EXPECT_TRUE(is_device_vector(kFirstDeviceVector));
  EXPECT_TRUE(is_device_vector(kLastDeviceVector));
  EXPECT_FALSE(is_device_vector(kLocalTimerVector));
  EXPECT_FALSE(is_device_vector(kRescheduleIpiVector));
  EXPECT_FALSE(is_device_vector(kPostedInterruptVector));
  EXPECT_FALSE(is_device_vector(0x20));  // legacy range
}

TEST(EmulatedLapic, PostThenDeliverable) {
  EmulatedLapic lapic;
  EXPECT_EQ(lapic.deliverable(), -1);
  lapic.post(0x41);
  EXPECT_EQ(lapic.deliverable(), 0x41);
  EXPECT_TRUE(lapic.has_pending());
}

TEST(EmulatedLapic, HigherVectorWins) {
  EmulatedLapic lapic;
  lapic.post(0x41);
  lapic.post(0x91);
  EXPECT_EQ(lapic.deliverable(), 0x91);
}

TEST(EmulatedLapic, InServiceMasksSamePriorityClass) {
  EmulatedLapic lapic;
  lapic.post(0x45);
  lapic.begin_service(0x45);
  // Same priority class (0x4x): not deliverable while 0x45 in service.
  lapic.post(0x43);
  EXPECT_EQ(lapic.deliverable(), -1);
  // Higher class preempts.
  lapic.post(0x80);
  EXPECT_EQ(lapic.deliverable(), 0x80);
}

TEST(EmulatedLapic, EoiRetiresAndUnmasksNext) {
  EmulatedLapic lapic;
  lapic.post(0x45);
  lapic.begin_service(0x45);
  lapic.post(0x43);
  EXPECT_EQ(lapic.in_service_count(), 1);
  const bool more = lapic.eoi();
  EXPECT_TRUE(more);
  EXPECT_EQ(lapic.deliverable(), 0x43);
  EXPECT_EQ(lapic.in_service_count(), 0);
}

TEST(EmulatedLapic, NestedServiceEoiOrder) {
  EmulatedLapic lapic;
  lapic.post(0x45);
  lapic.begin_service(0x45);
  lapic.post(0x80);
  lapic.begin_service(0x80);
  EXPECT_EQ(lapic.in_service_count(), 2);
  lapic.eoi();  // retires 0x80 (highest in service)
  EXPECT_EQ(lapic.in_service_count(), 1);
  EXPECT_TRUE(lapic.in_service(0x45));
}

TEST(PiDescriptor, FirstPostRequestsNotification) {
  PiDescriptor pi;
  EXPECT_TRUE(pi.post(0x50));
  EXPECT_TRUE(pi.outstanding());
  EXPECT_TRUE(pi.has_posted());
}

TEST(PiDescriptor, OnBitCoalescesDuplicateNotifications) {
  PiDescriptor pi;
  EXPECT_TRUE(pi.post(0x50));
  EXPECT_FALSE(pi.post(0x51));  // ON still set: no second IPI
  EXPECT_FALSE(pi.post(0x52));
  IrqBitmap dest;
  pi.sync_into(dest);
  EXPECT_EQ(dest.count(), 3);
  EXPECT_FALSE(pi.outstanding());
  // After sync, a new post notifies again.
  EXPECT_TRUE(pi.post(0x53));
}

TEST(VApicPage, SyncDeliverEoiRoundTrip) {
  VApicPage v;
  v.pi().post(0x61);
  v.sync_pir();
  EXPECT_EQ(v.deliverable(), 0x61);
  EXPECT_EQ(v.deliver(), 0x61);
  EXPECT_EQ(v.in_service_count(), 1);
  EXPECT_FALSE(v.eoi());
  EXPECT_EQ(v.in_service_count(), 0);
}

TEST(VApicPage, EoiExposesNextPending) {
  VApicPage v;
  v.pi().post(0x61);
  v.pi().post(0x72);
  v.sync_pir();
  EXPECT_EQ(v.deliver(), 0x72);
  EXPECT_TRUE(v.eoi());  // 0x61 becomes deliverable
  EXPECT_EQ(v.deliver(), 0x61);
}

TEST(VApicPage, SamePriorityClassMasked) {
  VApicPage v;
  v.pi().post(0x62);
  v.sync_pir();
  v.deliver();
  v.pi().post(0x61);
  v.sync_pir();
  EXPECT_EQ(v.deliverable(), -1);  // same class 0x6x in service
}

TEST(VApicPage, ResetClearsEverything) {
  VApicPage v;
  v.pi().post(0x61);
  v.sync_pir();
  v.deliver();
  v.reset();
  EXPECT_FALSE(v.has_pending());
  EXPECT_EQ(v.in_service_count(), 0);
  EXPECT_FALSE(v.pi().has_posted());
}

}  // namespace
}  // namespace es2
