// Unit tests for the workload engines: netperf streams, ping, memcached,
// apache/ab, httperf.
#include <gtest/gtest.h>

#include <memory>

#include "apps/httpd.h"
#include "apps/memcached.h"
#include "apps/netperf.h"
#include "apps/ping.h"
#include "harness/testbed.h"

namespace es2 {
namespace {

struct AppWorld {
  explicit AppWorld(Es2Config cfg = Es2Config::pi(), std::uint64_t seed = 1) {
    TestbedOptions o;
    o.config = cfg;
    o.seed = seed;
    tb = std::make_unique<Testbed>(std::move(o));
  }
  std::unique_ptr<Testbed> tb;
};

TEST(Netperf, UdpStreamFlowsToPeer) {
  AppWorld w;
  NetperfSender sender(w.tb->guest(), w.tb->frontend(), 100, Proto::kUdp, 512,
                       0);
  w.tb->guest().add_task(sender);
  PeerStreamReceiver rx(w.tb->peer(), 100, Proto::kUdp);
  w.tb->start();
  w.tb->sim().run_for(msec(50));
  EXPECT_GT(sender.packets_sent(), 1000);
  // A handful of packets may still be in flight on the wire.
  EXPECT_NEAR(static_cast<double>(rx.packets_received()),
              static_cast<double>(sender.packets_sent()), 32.0);
  EXPECT_LE(rx.bytes_received(), sender.bytes_sent());
}

TEST(Netperf, TcpSenderIsWindowLimitedWithoutAcks) {
  AppWorld w;
  NetperfSender sender(w.tb->guest(), w.tb->frontend(), 100, Proto::kTcp, 1024,
                       0);
  w.tb->guest().add_task(sender);
  // NO peer receiver: no ACKs ever come back.
  w.tb->start();
  w.tb->sim().run_for(msec(100));
  const Bytes window = w.tb->guest().params().tcp_window;
  EXPECT_LE(sender.bytes_sent(), window);
  EXPECT_GE(sender.bytes_sent(), window - 2 * kMtu);
}

TEST(Netperf, TcpAckClockingSustainsStream) {
  AppWorld w;
  NetperfSender sender(w.tb->guest(), w.tb->frontend(), 100, Proto::kTcp, 1024,
                       0);
  w.tb->guest().add_task(sender);
  PeerStreamReceiver rx(w.tb->peer(), 100, Proto::kTcp);
  w.tb->start();
  w.tb->sim().run_for(msec(100));
  EXPECT_GT(sender.bytes_sent(), w.tb->guest().params().tcp_window * 4);
  EXPECT_NEAR(static_cast<double>(rx.bytes_received()),
              static_cast<double>(sender.bytes_sent()), 64.0 * kMtu);
}

TEST(Netperf, LargeMessagesSegmentToMtu) {
  AppWorld w;
  NetperfSender sender(w.tb->guest(), w.tb->frontend(), 100, Proto::kTcp,
                       16 * kKiB, 0);
  w.tb->guest().add_task(sender);
  PeerStreamReceiver rx(w.tb->peer(), 100, Proto::kTcp);
  w.tb->start();
  w.tb->sim().run_for(msec(50));
  EXPECT_GT(sender.messages_sent(), 10);
  // 16KiB -> 12 segments per message.
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()) /
                  static_cast<double>(sender.messages_sent()),
              12.0, 1.0);
}

TEST(Netperf, GuestReceiverCountsAndAcks) {
  AppWorld w;
  NetperfReceiver rx(w.tb->guest(), w.tb->frontend(), 200, Proto::kTcp);
  PeerStreamSender::Params params;
  params.proto = Proto::kTcp;
  params.msg_size = 1024;
  PeerStreamSender tx(w.tb->peer(), 200, params);
  w.tb->start();
  tx.start();
  w.tb->sim().run_for(msec(100));
  EXPECT_GT(rx.bytes_received(), 100 * 1024);
  EXPECT_EQ(tx.retransmits(), 0);  // no loss in a 1-VM micro world
}

TEST(Netperf, UdpOfferedRateRespected) {
  AppWorld w;
  NetperfReceiver rx(w.tb->guest(), w.tb->frontend(), 200, Proto::kUdp);
  PeerStreamSender::Params params;
  params.proto = Proto::kUdp;
  params.msg_size = 512;
  params.udp_rate_pps = 50000;
  PeerStreamSender tx(w.tb->peer(), 200, params);
  w.tb->start();
  tx.start();
  w.tb->sim().run_for(msec(200));
  EXPECT_NEAR(static_cast<double>(tx.packets_sent()), 10000.0, 600.0);
  EXPECT_NEAR(static_cast<double>(rx.packets_received()),
              static_cast<double>(tx.packets_sent()), 200.0);
}

TEST(Ping, EchoRoundTrip) {
  AppWorld w;
  PingResponder responder(w.tb->guest(), w.tb->frontend(), 7);
  PingClient client(w.tb->peer(), 7, msec(5));
  w.tb->start();
  client.start();
  w.tb->sim().run_for(msec(101));
  EXPECT_GE(client.rtt().count(), 19);
  EXPECT_LE(client.lost(), 1);  // at most the in-flight final probe
  EXPECT_GE(responder.echoed(), client.rtt().count());
  // Dedicated-core micro world: RTT well under 100us.
  EXPECT_LT(client.rtt().p99(), usec(100));
}

TEST(Memcached, RequestsGetResponses) {
  AppWorld w;
  MemcachedServer server(w.tb->guest(), w.tb->frontend(), 1000, 4, 2);
  MemaslapClient::Params cp;
  cp.threads = 4;
  cp.concurrency_per_thread = 4;
  MemaslapClient client(w.tb->peer(), 1000, cp, 1);
  w.tb->start();
  client.start();
  w.tb->sim().run_for(msec(200));
  EXPECT_GT(client.ops(), 1000);
  // In-flight responses at cutoff make the counts differ by a few.
  EXPECT_NEAR(static_cast<double>(server.responses()),
              static_cast<double>(client.ops()), 16.0);
  EXPECT_GT(client.latency().count(), 1000);
}

TEST(Memcached, GetSetMixAffectsResponseBytes) {
  AppWorld w;
  MemcachedServer server(w.tb->guest(), w.tb->frontend(), 1000, 2, 2);
  MemaslapClient::Params all_gets;
  all_gets.threads = 2;
  all_gets.concurrency_per_thread = 2;
  all_gets.get_ratio = 1.0;
  MemaslapClient client(w.tb->peer(), 1000, all_gets, 1);
  w.tb->start();
  client.start();
  w.tb->sim().run_for(msec(100));
  client.begin_window(w.tb->sim().now());
  w.tb->sim().run_for(msec(100));
  // All gets: response bytes/op == get_response size.
  const double mbps_measured = client.response_mbps(w.tb->sim().now());
  const double expected =
      client.ops_per_sec(w.tb->sim().now()) * 1076 * 8 / 1e6;
  EXPECT_NEAR(mbps_measured, expected, expected * 0.05 + 0.1);
}

TEST(Apache, ServesPagesToAb) {
  AppWorld w;
  ApacheServer server(w.tb->guest(), w.tb->frontend(), 2000, 4, 2);
  AbClient client(w.tb->peer(), 2000, 4);
  w.tb->start();
  client.start();
  w.tb->sim().run_for(msec(300));
  EXPECT_GT(client.completed(), 100);
  EXPECT_EQ(server.requests_served(), client.completed());
}

TEST(Httperf, HandshakesAtLowRateAreFast) {
  AppWorld w;
  ApacheServer server(w.tb->guest(), w.tb->frontend(), 3000, 1, 2);
  HttperfClient client(w.tb->peer(), server.listen_flow(), 200.0);
  w.tb->start();
  client.start();
  w.tb->sim().run_for(msec(500));
  client.stop();
  EXPECT_GT(client.established(), 90);
  EXPECT_EQ(client.retries(), 0);
  EXPECT_LT(client.connect_time().mean(), 1e6);  // < 1ms on dedicated core
}

TEST(Httperf, BacklogOverflowTriggersSynRetries) {
  AppWorld w;
  ApacheCosts costs;
  costs.syn_backlog = 4;
  costs.accept_cost = 2300000;  // 1ms per accept: easily saturated
  ApacheServer server(w.tb->guest(), w.tb->frontend(), 3000, 1, 1, costs);
  HttperfClient client(w.tb->peer(), server.listen_flow(), 5000.0,
                       /*syn_rto=*/msec(50));
  w.tb->start();
  client.start();
  w.tb->sim().run_for(msec(300));
  client.stop();
  EXPECT_GT(server.syn_drops(), 0);
  EXPECT_GT(client.retries(), 0);
  // Retried connections show the RTO in their connect time.
  EXPECT_GT(client.connect_time().max(), msec(50));
}

TEST(Burn, ConsumesOnlySlackCpu) {
  AppWorld w;
  // Burn exists via testbed options; add a netperf sender: the sender
  // should dominate.
  NetperfSender sender(w.tb->guest(), w.tb->frontend(), 100, Proto::kUdp, 512,
                       0);
  w.tb->guest().add_task(sender);
  PeerStreamReceiver rx(w.tb->peer(), 100, Proto::kUdp);
  w.tb->start();
  w.tb->sim().run_for(msec(100));
  // Throughput should be essentially the same as without burn: the
  // low-priority task cannot steal meaningful cycles.
  EXPECT_GT(sender.packets_sent(), 10000);
}

}  // namespace
}  // namespace es2
