// Profile-layer tests: the critical-path blame analyzer on hand-crafted
// record sequences (exact partition, incomplete/coalesced journeys, the
// worst-journey ledger), the es2-blame-v1 exporter round-trip and diff,
// the zero-alloc scoped profiler (span aggregation, slice ring, scope
// tree, allocation guarantee via es2_alloc_hook), and — against real
// streams — the passivity contract: profiling a run must not change it.
//
// The analyzer/profiler units run in every build; the end-to-end cases
// need the instrumentation call sites and skip without -DES2_TRACE=ON /
// -DES2_PROFILE=ON.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "base/alloc_hook.h"
#include "harness/experiments.h"
#include "profile/blame.h"
#include "profile/blame_export.h"
#include "profile/hooks.h"
#include "profile/prof_export.h"
#include "profile/profiler.h"
#include "trace/export.h"
#include "trace/hooks.h"
#include "trace/trace.h"

namespace es2 {
namespace {

// FNV-1a-32 of a thread name, mirroring the sched tracepoints' tag.
std::uint32_t tag(const std::string& name) {
  std::uint32_t h = 2166136261u;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  return h;
}

TraceRecord rec(SimTime t, TraceKind kind, std::uint64_t corr = 0,
                std::uint32_t arg = 0, int vm = -1, int vcpu = -1) {
  TraceRecord r;
  r.t = t;
  r.kind = kind;
  r.corr = corr;
  r.arg = arg;
  r.vm = static_cast<std::int8_t>(vm);
  r.vcpu = static_cast<std::int8_t>(vcpu);
  return r;
}

// One fully-landmarked TX journey with every attribution cut present:
//   kick 1000, wake 1100, worker on-core 1250, turn 1400, suppression
//   decision 1600, MSI 1900, vcpu on-core 2000, dispatch 2200, EOI 2600.
std::vector<TraceRecord> full_journey(std::uint64_t corr, SimTime base) {
  return {
      rec(base + 0, TraceKind::kKick, corr, /*queue=*/0, 0),
      rec(base + 100, TraceKind::kWorkerWake),
      rec(base + 250, TraceKind::kSchedIn, 0, tag("vhost-vm0")),
      rec(base + 400, TraceKind::kWorkerTurn, corr, 0),
      rec(base + 600, TraceKind::kIrqSuppressed, corr, 0),
      rec(base + 900, TraceKind::kMsiRaise, corr, 33, 0),
      rec(base + 1000, TraceKind::kSchedIn, 0, tag("vm0/vcpu0")),
      rec(base + 1200, TraceKind::kIrqDispatch, corr, 33, 0, 0),
      rec(base + 1600, TraceKind::kEoi, corr, 0, 0, 0),
  };
}

SimDuration ns_of(const BlameBreakdown& b, BlameComponent c) {
  return b.component_ns[static_cast<std::size_t>(c)];
}

// ---------------------------------------------------------------------------
// Critical-path analyzer
// ---------------------------------------------------------------------------

TEST(BlameAnalyzer, AttributesEveryNanosecondExactly) {
  const BlameBreakdown b = analyze_blame(full_journey(7, 1000));
  EXPECT_EQ(b.journeys, 1);
  EXPECT_EQ(b.complete, 1);
  EXPECT_EQ(b.total_ns, 1600);
  EXPECT_EQ(ns_of(b, BlameComponent::kNotifyWake), 100);
  EXPECT_EQ(ns_of(b, BlameComponent::kSchedDelay), 150);
  EXPECT_EQ(ns_of(b, BlameComponent::kQueueWait), 150);
  EXPECT_EQ(ns_of(b, BlameComponent::kBackendService), 200);
  EXPECT_EQ(ns_of(b, BlameComponent::kSuppression), 300);
  EXPECT_EQ(ns_of(b, BlameComponent::kVcpuWait), 100);
  EXPECT_EQ(ns_of(b, BlameComponent::kMsiDelivery), 200);
  EXPECT_EQ(ns_of(b, BlameComponent::kGuestService), 400);

  std::int64_t sum = 0;
  double fraction_sum = 0;
  for (std::size_t c = 0; c < kBlameComponents; ++c) {
    sum += b.component_ns[c];
    fraction_sum += b.fraction(static_cast<BlameComponent>(c));
  }
  EXPECT_EQ(sum, b.total_ns);
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
}

TEST(BlameAnalyzer, IncompleteJourneyIsCountedButNotAttributed) {
  std::vector<TraceRecord> records = full_journey(7, 1000);
  records.pop_back();  // drop the EOI
  const BlameBreakdown b = analyze_blame(records);
  EXPECT_EQ(b.journeys, 1);
  EXPECT_EQ(b.complete, 0);
  EXPECT_EQ(b.total_ns, 0);
}

TEST(BlameAnalyzer, CoalescedLandmarkOrderIsSkipped) {
  // MSI recorded before the worker turn: not a monotone journey.
  std::vector<TraceRecord> records = {
      rec(1000, TraceKind::kKick, 9, 0, 0),
      rec(1100, TraceKind::kMsiRaise, 9, 33, 0),
      rec(1200, TraceKind::kWorkerTurn, 9, 0),
      rec(1300, TraceKind::kIrqDispatch, 9, 33, 0, 0),
      rec(1400, TraceKind::kEoi, 9, 0, 0, 0),
  };
  const BlameBreakdown b = analyze_blame(records);
  EXPECT_EQ(b.journeys, 1);
  EXPECT_EQ(b.complete, 0);
}

TEST(BlameAnalyzer, JourneyWithoutWakeChargesQueueWait) {
  // No worker wake / sched-in records: the origin->turn gap is all queue
  // residency, and without a wake no sched delay may be claimed.
  std::vector<TraceRecord> records = {
      rec(1000, TraceKind::kKick, 11, 0, 0),
      rec(1500, TraceKind::kWorkerTurn, 11, 0),
      rec(1600, TraceKind::kMsiRaise, 11, 33, 0),
      rec(1700, TraceKind::kIrqDispatch, 11, 33, 0, 0),
      rec(1800, TraceKind::kEoi, 11, 0, 0, 0),
  };
  const BlameBreakdown b = analyze_blame(records);
  EXPECT_EQ(b.complete, 1);
  EXPECT_EQ(ns_of(b, BlameComponent::kNotifyWake), 0);
  EXPECT_EQ(ns_of(b, BlameComponent::kSchedDelay), 0);
  EXPECT_EQ(ns_of(b, BlameComponent::kQueueWait), 500);
  // No suppression decision either: the turn->msi span is all service.
  EXPECT_EQ(ns_of(b, BlameComponent::kBackendService), 100);
  EXPECT_EQ(ns_of(b, BlameComponent::kSuppression), 0);
}

TEST(BlameAnalyzer, WireRxOriginMapsToTheRxQueue) {
  std::vector<TraceRecord> records = {
      rec(1000, TraceKind::kWireRx, 13, /*pair=*/1),
      rec(1500, TraceKind::kWorkerTurn, 13, 3),
      rec(1600, TraceKind::kMsiRaise, 13, 34, 0),
      rec(1700, TraceKind::kIrqDispatch, 13, 34, 0, 0),
      rec(1800, TraceKind::kEoi, 13, 0, 0, 0),
  };
  const BlameBreakdown b = analyze_blame(records);
  ASSERT_EQ(b.worst.size(), 1u);
  EXPECT_EQ(b.worst[0].queue, 3);  // pair 1 -> flat RX queue index 3
  EXPECT_FALSE(b.worst[0].tx_origin);
  ASSERT_EQ(b.groups.size(), 1u);
  EXPECT_EQ(b.groups[0].queue, 3);
  EXPECT_EQ(b.groups[0].journeys, 1);
}

TEST(BlameAnalyzer, LedgerIsWorstFirstAndDeterministic) {
  // Three journeys, stretched guest service: totals 1600, 2600, 3600.
  std::vector<TraceRecord> records;
  for (int i = 0; i < 3; ++i) {
    std::vector<TraceRecord> j =
        full_journey(static_cast<std::uint64_t>(20 + i), 10000 * (i + 1));
    j.back().t += 1000 * i;  // push the EOI out
    records.insert(records.end(), j.begin(), j.end());
  }
  BlameOptions o;
  o.ledger_k = 0.0;  // threshold 0: every journey makes the ledger
  o.ledger_top_n = 2;
  const BlameBreakdown a = analyze_blame(records, o);
  ASSERT_EQ(a.worst.size(), 2u);
  EXPECT_EQ(a.worst[0].corr, 22u);
  EXPECT_EQ(a.worst[0].total(), 3600);
  EXPECT_EQ(a.worst[1].corr, 21u);

  // Same input -> identical ledger, including the rendered critical paths.
  const BlameBreakdown b = analyze_blame(records, o);
  ASSERT_EQ(b.worst.size(), a.worst.size());
  for (std::size_t i = 0; i < a.worst.size(); ++i) {
    EXPECT_EQ(blame_critical_path(a.worst[i]), blame_critical_path(b.worst[i]));
  }
}

TEST(BlameAnalyzer, GroupsAccumulatePerVmQueue) {
  std::vector<TraceRecord> records = full_journey(31, 1000);
  std::vector<TraceRecord> second = full_journey(32, 50000);
  records.insert(records.end(), second.begin(), second.end());
  const BlameBreakdown b = analyze_blame(records);
  ASSERT_EQ(b.groups.size(), 1u);
  EXPECT_EQ(b.groups[0].vm, 0);
  EXPECT_EQ(b.groups[0].queue, 0);
  EXPECT_EQ(b.groups[0].journeys, 2);
  EXPECT_EQ(b.groups[0].total, 3200);
}

// ---------------------------------------------------------------------------
// es2-blame-v1 export
// ---------------------------------------------------------------------------

TEST(BlameExport, JsonIsByteStableAndRoundTrips) {
  const BlameBreakdown b = analyze_blame(full_journey(7, 1000));
  const std::string text = blame_to_json_text(b);
  EXPECT_EQ(text, blame_to_json_text(b));
  EXPECT_NE(text.find(kBlameSchema), std::string::npos);

  BlameSummary parsed;
  std::string error;
  ASSERT_TRUE(blame_summary_from_json(text, &parsed, &error)) << error;
  const BlameSummary direct = blame_summary(b);
  EXPECT_EQ(parsed.journeys, direct.journeys);
  EXPECT_EQ(parsed.complete, direct.complete);
  EXPECT_EQ(parsed.total_ns, direct.total_ns);
  ASSERT_EQ(parsed.components.size(), direct.components.size());
  for (std::size_t i = 0; i < parsed.components.size(); ++i) {
    EXPECT_EQ(parsed.components[i].name, direct.components[i].name);
    EXPECT_EQ(parsed.components[i].ns, direct.components[i].ns);
    EXPECT_DOUBLE_EQ(parsed.components[i].fraction,
                     direct.components[i].fraction);
  }
}

TEST(BlameExport, MarkdownCarriesTheBudgetTable) {
  const std::string md =
      render_blame_markdown(blame_summary(analyze_blame(full_journey(7, 1000))));
  EXPECT_NE(md.find("guest_service"), std::string::npos);
  EXPECT_NE(md.find("| **total** |"), std::string::npos);
}

TEST(BlameExport, DiffNamesTheRegressedComponent) {
  const BlameSummary a = blame_summary(analyze_blame(full_journey(7, 1000)));
  // Same journey with the suppression window stretched by 600ns: its
  // share grows at everyone else's expense.
  std::vector<TraceRecord> slow = full_journey(7, 1000);
  for (TraceRecord& r : slow) {
    if (r.t >= 1900) r.t += 600;  // push msi and everything after
  }
  const BlameSummary b = blame_summary(analyze_blame(slow));
  const BlameDiff d = diff_blame(a, b);
  EXPECT_EQ(d.regressed, "suppression");
  EXPECT_GT(d.regressed_delta, 0.0);
  EXPECT_NE(render_blame_diff_markdown(d).find("suppression"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Scoped profiler
// ---------------------------------------------------------------------------

TEST(Profiler, SpansAggregatePerComponentKey) {
  Profiler p;
  p.enable();
  p.span_begin(ProfComp::kVhostTurnTx, 0, 1000);
  p.span_end(ProfComp::kVhostTurnTx, 0, 1400);
  p.span_begin(ProfComp::kVhostTurnTx, 0, 2000);
  p.span_end(ProfComp::kVhostTurnTx, 0, 2100);
  p.span_begin(ProfComp::kGuestNapi, 3, 1500);
  p.span_end(ProfComp::kGuestNapi, 3, 1800);
  const ProfileData d = p.data();
  ASSERT_EQ(d.spans.size(), 2u);
  EXPECT_EQ(d.spans[0].comp, ProfComp::kVhostTurnTx);
  EXPECT_EQ(d.spans[0].count, 2);
  EXPECT_EQ(d.spans[0].sim_ns, 500);
  EXPECT_EQ(d.spans[1].comp, ProfComp::kGuestNapi);
  EXPECT_EQ(d.spans[1].key, 3);
  EXPECT_EQ(d.spans[1].sim_ns, 300);
  EXPECT_EQ(d.slices_total, 3u);
  EXPECT_EQ(d.dropped, 0u);
}

TEST(Profiler, SliceRingKeepsTheNewest) {
  ProfileOptions o;
  o.slice_capacity = 4;
  Profiler p(o);
  p.enable();
  for (int i = 0; i < 6; ++i) {
    p.span_begin(ProfComp::kVhostMsi, 0, i * 100);
    p.span_end(ProfComp::kVhostMsi, 0, i * 100 + 50);
  }
  const ProfileData d = p.data();
  EXPECT_EQ(d.slices_total, 6u);
  ASSERT_EQ(d.slices.size(), 4u);
  EXPECT_EQ(d.slices.front().begin, 200);  // oldest surviving
  EXPECT_EQ(d.slices.back().begin, 500);
}

TEST(Profiler, UnbalancedBeginCountsAsDropped) {
  Profiler p;
  p.enable();
  p.span_begin(ProfComp::kVhostTurnRx, 1, 100);
  p.span_begin(ProfComp::kVhostTurnRx, 1, 200);  // slot already open
  p.span_end(ProfComp::kVhostTurnRx, 1, 300);
  const ProfileData d = p.data();
  EXPECT_EQ(d.dropped, 1u);
  ASSERT_EQ(d.spans.size(), 1u);
  EXPECT_EQ(d.spans[0].count, 1);
  EXPECT_EQ(d.spans[0].sim_ns, 200);  // 300 - the first (kept) begin
}

TEST(Profiler, ScopeTreeNestsAndSurvivesOverflow) {
  Profiler p;
  p.enable();
  {
    Profiler::Scope outer(&p, ProfComp::kVcpuExit);
    Profiler::Scope inner(&p, ProfComp::kCfsResched);
  }
  {
    Profiler::Scope outer(&p, ProfComp::kVcpuExit);
  }
  ProfileData d = p.data();
  ASSERT_EQ(d.nodes.size(), 2u);
  EXPECT_EQ(d.nodes[0].comp, ProfComp::kVcpuExit);
  EXPECT_EQ(d.nodes[0].parent, -1);
  EXPECT_EQ(d.nodes[0].calls, 2);
  EXPECT_EQ(d.nodes[1].comp, ProfComp::kCfsResched);
  EXPECT_EQ(d.nodes[1].parent, 0);
  EXPECT_EQ(d.nodes[1].calls, 1);

  // Pushing far past the depth budget must neither grow the stack nor
  // corrupt the tree — the excess is counted and popping unwinds cleanly.
  for (int i = 0; i < 100; ++i) p.push(ProfComp::kCfsResched);
  for (int i = 0; i < 100; ++i) p.pop();
  d = p.data();
  EXPECT_GT(d.dropped, 0u);
  Profiler::Scope again(&p, ProfComp::kVcpuExit);
}

TEST(Profiler, RecordPathsAllocateNothing) {
  Profiler p;
  p.enable();
  // Warm both paths (first touch of a span slot / tree node).
  p.span_begin(ProfComp::kVhostTurnTx, 2, 0);
  p.span_end(ProfComp::kVhostTurnTx, 2, 10);
  p.push(ProfComp::kVcpuExit);
  p.push(ProfComp::kCfsResched);
  p.pop();
  p.pop();

  test::AllocationCounter allocs;
  for (int i = 0; i < 10000; ++i) {
    p.span_begin(ProfComp::kVhostTurnTx, 2, i * 100);
    p.span_end(ProfComp::kVhostTurnTx, 2, i * 100 + 40);
    p.push(ProfComp::kVcpuExit);
    p.push(ProfComp::kCfsResched);
    p.pop();
    p.pop();
  }
  EXPECT_EQ(allocs.delta(), 0);
}

TEST(ProfExport, CollapsedStacksAreSortedAndDeterministic) {
  Profiler p;
  p.enable();
  {
    Profiler::Scope outer(&p, ProfComp::kVcpuExit);
    Profiler::Scope inner(&p, ProfComp::kCfsResched);
  }
  p.span_begin(ProfComp::kVhostTurnTx, 0, 100);
  p.span_end(ProfComp::kVhostTurnTx, 0, 400);
  const ProfileData d = p.data();
  const std::string calls = prof_to_collapsed(d, CollapsedWeight::kCalls);
  EXPECT_EQ(calls, prof_to_collapsed(d, CollapsedWeight::kCalls));
  EXPECT_NE(calls.find("host;vcpu_exit;cfs_resched 1"), std::string::npos);
  EXPECT_NE(calls.find("sim;vhost_turn_tx"), std::string::npos);
  // Host-time weights exclude sim spans (host wall-time is measurement
  // noise; sim spans would pollute the flamegraph with zeros).
  const std::string host = prof_to_collapsed(d, CollapsedWeight::kHostNs);
  EXPECT_EQ(host.find("sim;"), std::string::npos);
  EXPECT_EQ(prof_to_json_text(d), prof_to_json_text(d));
}

// ---------------------------------------------------------------------------
// End-to-end: passivity + determinism against real streams
// ---------------------------------------------------------------------------

StreamOptions short_stream(std::uint64_t seed) {
  StreamOptions o;
  o.config = Es2Config::pi_h_r();
  o.seed = seed;
  o.warmup = msec(50);
  o.measure = msec(200);
  return o;
}

TEST(ProfilePath, ProfilingIsPassive) {
  // The strong oracle: profiled and unprofiled same-seed runs must agree
  // on every headline number AND on the epoch state-hash series (the
  // bit-identity witness for the whole world).
  StreamOptions profiled = short_stream(41);
  profiled.profile.enabled = true;
  profiled.snapshot.hash_epochs = true;
  StreamOptions plain = short_stream(41);
  plain.snapshot.hash_epochs = true;

  const StreamResult with = run_stream(profiled);
  const StreamResult without = run_stream(plain);
  ASSERT_NE(with.profile, nullptr);
  EXPECT_EQ(without.profile, nullptr);
  EXPECT_DOUBLE_EQ(with.throughput_mbps, without.throughput_mbps);
  EXPECT_DOUBLE_EQ(with.packets_per_sec, without.packets_per_sec);
  EXPECT_DOUBLE_EQ(with.kicks_per_sec, without.kicks_per_sec);
  EXPECT_DOUBLE_EQ(with.exits.total, without.exits.total);
  ASSERT_NE(with.hashes, nullptr);
  ASSERT_NE(without.hashes, nullptr);
  EXPECT_EQ(with.hashes->to_json_text(), without.hashes->to_json_text());
}

TEST(ProfilePath, SameSeedProfileExportsAreByteIdentical) {
#if !ES2_PROFILE_ENABLED
  GTEST_SKIP() << "needs -DES2_PROFILE=ON";
#else
  StreamOptions o = short_stream(42);
  o.profile.enabled = true;
  const StreamResult a = run_stream(o);
  const StreamResult b = run_stream(o);
  ASSERT_NE(a.profile, nullptr);
  ASSERT_NE(b.profile, nullptr);
  ASSERT_FALSE(a.profile->spans.empty());
  EXPECT_EQ(prof_to_json_text(*a.profile), prof_to_json_text(*b.profile));
  EXPECT_EQ(prof_to_collapsed(*a.profile, CollapsedWeight::kSimNs),
            prof_to_collapsed(*b.profile, CollapsedWeight::kSimNs));
#endif
}

TEST(ProfilePath, SameSeedBlameExportsAreByteIdentical) {
#if !ES2_TRACE_ENABLED
  GTEST_SKIP() << "needs -DES2_TRACE=ON";
#else
  StreamOptions o = short_stream(43);
  o.trace.enabled = true;
  o.trace.capacity = std::size_t{1} << 17;
  const StreamResult a = run_stream(o);
  const StreamResult b = run_stream(o);
  const BlameBreakdown ba = blame_of(a.trace.get());
  const BlameBreakdown bb = blame_of(b.trace.get());
  ASSERT_GT(ba.complete, 0);
  EXPECT_EQ(blame_to_json_text(ba), blame_to_json_text(bb));
  ASSERT_EQ(ba.worst.size(), bb.worst.size());
  for (std::size_t i = 0; i < ba.worst.size(); ++i) {
    EXPECT_EQ(blame_critical_path(ba.worst[i]),
              blame_critical_path(bb.worst[i]));
  }
#endif
}

TEST(ProfilePath, BlameFractionsSumToTracedJourneyTotals) {
#if !ES2_TRACE_ENABLED
  GTEST_SKIP() << "needs -DES2_TRACE=ON";
#else
  StreamOptions o = short_stream(44);
  o.trace.enabled = true;
  o.trace.capacity = std::size_t{1} << 17;
  const StreamResult r = run_stream(o);
  const BlameBreakdown b = blame_of(r.trace.get());
  ASSERT_GT(b.complete, 0);
  std::int64_t sum = 0;
  double fraction_sum = 0;
  for (std::size_t c = 0; c < kBlameComponents; ++c) {
    sum += b.component_ns[c];
    fraction_sum += b.fraction(static_cast<BlameComponent>(c));
  }
  EXPECT_EQ(sum, b.total_ns);
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);
  // Per-group partitions are exact too.
  for (const BlameGroup& g : b.groups) {
    std::int64_t gsum = 0;
    for (std::size_t c = 0; c < kBlameComponents; ++c) gsum += g.ns[c];
    EXPECT_EQ(gsum, g.total);
  }
#endif
}

TEST(ProfilePath, ProfiledStreamRecordsVhostSpans) {
#if !ES2_PROFILE_ENABLED
  GTEST_SKIP() << "needs -DES2_PROFILE=ON";
#else
  StreamOptions o = short_stream(45);
  o.profile.enabled = true;
  const StreamResult r = run_stream(o);
  ASSERT_NE(r.profile, nullptr);
  bool saw_turn = false;
  bool saw_guest = false;
  for (const ProfSpanStat& s : r.profile->spans) {
    if (s.comp == ProfComp::kVhostTurnTx || s.comp == ProfComp::kVhostTurnRx) {
      saw_turn = true;
      EXPECT_GT(s.count, 0);
    }
    if (s.comp == ProfComp::kGuestIrqService) saw_guest = true;
  }
  EXPECT_TRUE(saw_turn);
  EXPECT_TRUE(saw_guest);
#endif
}

}  // namespace
}  // namespace es2
