// Property-based tests: invariants that must hold across parameter sweeps
// (seeds, configurations, quotas, message sizes). Uses parameterized gtest
// suites as property harnesses.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiments.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// Property: conservation of packets across the stack, for all configs and
// directions.
// ---------------------------------------------------------------------------

class ConservationProperty
    : public ::testing::TestWithParam<std::tuple<int, bool, std::uint64_t>> {};

TEST_P(ConservationProperty, NothingLostNothingInvented) {
  const auto [config_index, vm_sends, seed] = GetParam();
  StreamOptions o;
  o.config = Es2Config::all4()[config_index];
  o.proto = Proto::kUdp;
  o.msg_size = 512;
  o.vm_sends = vm_sends;
  o.seed = seed;
  o.warmup = msec(50);
  o.measure = msec(200);
  const StreamResult r = run_stream(o);
  EXPECT_GT(r.packets_per_sec, 1000.0);
  EXPECT_EQ(r.rx_dropped, 0);
  // Rates are finite and sane.
  EXPECT_LT(r.packets_per_sec, 1e7);
  EXPECT_GE(r.exits.tig_percent, 0.0);
  EXPECT_LE(r.exits.tig_percent, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsDirectionsSeeds, ConservationProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Bool(),
                       ::testing::Values(1u, 42u)));

// ---------------------------------------------------------------------------
// Property: PI configurations never produce interrupt-related exits,
// whatever the workload shape.
// ---------------------------------------------------------------------------

class PiExitFreeProperty
    : public ::testing::TestWithParam<std::tuple<int, Bytes, std::uint64_t>> {};

TEST_P(PiExitFreeProperty, NoInterruptExitsUnderPi) {
  const auto [proto_int, msg, seed] = GetParam();
  StreamOptions o;
  o.config = Es2Config::pi();
  o.proto = proto_int == 0 ? Proto::kTcp : Proto::kUdp;
  o.msg_size = msg;
  o.vm_sends = true;
  o.seed = seed;
  o.warmup = msec(50);
  o.measure = msec(150);
  const StreamResult r = run_stream(o);
  EXPECT_EQ(r.exits.interrupt_delivery, 0.0);
  EXPECT_EQ(r.exits.interrupt_completion, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ProtosSizesSeeds, PiExitFreeProperty,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values<Bytes>(64, 1024, 4096),
                       ::testing::Values(3u, 9u)));

// ---------------------------------------------------------------------------
// Property: exit-rate ordering Baseline >= PI >= PI+H holds across message
// sizes (the paper's central claim).
// ---------------------------------------------------------------------------

class ExitOrderingProperty : public ::testing::TestWithParam<Bytes> {};

TEST_P(ExitOrderingProperty, TotalExitsShrinkAlongTheStack) {
  const Bytes msg = GetParam();
  auto run_with = [msg](Es2Config cfg) {
    StreamOptions o;
    o.config = cfg;
    o.proto = Proto::kTcp;
    o.msg_size = msg;
    o.vm_sends = true;
    o.warmup = msec(80);
    o.measure = msec(250);
    return run_stream(o);
  };
  const StreamResult base = run_with(Es2Config::baseline());
  const StreamResult pi = run_with(Es2Config::pi());
  const StreamResult pih = run_with(Es2Config::pi_h(4));
  EXPECT_GT(base.exits.total, pi.exits.total * 1.2) << "msg=" << msg;
  // Large messages already batch kicks per multi-segment send, so PI can
  // be near-exitless on its own; the hybrid must never make it worse than
  // noise.
  EXPECT_LE(pih.exits.total, pi.exits.total + 1500.0) << "msg=" << msg;
  // TIG improves monotonically (within measurement noise).
  EXPECT_LT(base.exits.tig_percent, pi.exits.tig_percent);
  EXPECT_LT(pi.exits.tig_percent, pih.exits.tig_percent + 0.2);
}

INSTANTIATE_TEST_SUITE_P(MessageSizes, ExitOrderingProperty,
                         ::testing::Values<Bytes>(256, 1024, 8192));

// ---------------------------------------------------------------------------
// Property: determinism — identical (config, seed) pairs give identical
// results for every configuration.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismProperty, SameSeedSameResult) {
  StreamOptions o;
  o.config = Es2Config::all4()[GetParam()];
  o.proto = Proto::kTcp;
  o.msg_size = 1024;
  o.seed = 1234;
  o.warmup = msec(50);
  o.measure = msec(150);
  const StreamResult a = run_stream(o);
  const StreamResult b = run_stream(o);
  EXPECT_EQ(a.exits.total, b.exits.total);
  EXPECT_EQ(a.exits.io_instruction, b.exits.io_instruction);
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.guest_irqs_per_sec, b.guest_irqs_per_sec);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DeterminismProperty,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Property: redirection only ever picks valid vCPUs and never touches
// per-vCPU vectors, across policies.
// ---------------------------------------------------------------------------

class RedirectPolicyProperty
    : public ::testing::TestWithParam<RedirectPolicy> {};

TEST_P(RedirectPolicyProperty, PingStaysCorrectUnderPolicy) {
  PingOptions o;
  o.config = Es2Config::pi_h_r();
  o.config.policy = GetParam();
  o.samples = 25;
  o.interval = msec(40);
  const PingResult r = run_ping(o);
  // Every probe except in-flight stragglers must come back: redirection
  // never loses or misdelivers interrupts.
  EXPECT_LE(r.lost, 2);
  EXPECT_GE(r.rtt.count(), 23);
}

INSTANTIATE_TEST_SUITE_P(Policies, RedirectPolicyProperty,
                         ::testing::Values(RedirectPolicy::kPaper,
                                           RedirectPolicy::kNoSticky,
                                           RedirectPolicy::kRoundRobin,
                                           RedirectPolicy::kRandomOffline));

// ---------------------------------------------------------------------------
// Property: the guest is never starved — TIG stays in a sane band for all
// stacks under a CPU-burn + stream load.
// ---------------------------------------------------------------------------

class TigBandProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TigBandProperty, TigWithinBand) {
  const auto [config_index, proto_int] = GetParam();
  StreamOptions o;
  o.config = Es2Config::all4()[config_index];
  o.proto = proto_int == 0 ? Proto::kTcp : Proto::kUdp;
  o.msg_size = 1024;
  o.warmup = msec(50);
  o.measure = msec(200);
  const StreamResult r = run_stream(o);
  // With the burn task, the vCPU never idles: TIG in [70, 100).
  EXPECT_GE(r.exits.tig_percent, 70.0);
  EXPECT_LT(r.exits.tig_percent, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndProtos, TigBandProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace es2
