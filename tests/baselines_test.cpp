// Unit tests for the §II-C related-work baselines: interrupt coalescing,
// the guest poll-mode driver, and ELI/DID-style exit-less direct delivery.
#include <gtest/gtest.h>

#include <memory>

#include "apps/netperf.h"
#include "apps/ping.h"
#include "baselines/coalescer.h"
#include "baselines/poll_driver.h"
#include "harness/testbed.h"

namespace es2 {
namespace {

struct BaselineWorld {
  explicit BaselineWorld(Es2Config cfg = Es2Config::baseline()) {
    TestbedOptions o;
    o.config = cfg;
    tb = std::make_unique<Testbed>(std::move(o));
  }
  std::unique_ptr<Testbed> tb;
};

TEST(Coalescer, BatchesInterrupts) {
  BaselineWorld w;
  InterruptCoalescer::Params p;
  p.batch = 4;
  p.timeout = msec(10);
  InterruptCoalescer coalescer(w.tb->backend(), p);
  NetperfReceiver rx(w.tb->guest(), w.tb->frontend(), 200, Proto::kUdp);
  PeerStreamSender::Params sp;
  sp.proto = Proto::kUdp;
  sp.udp_rate_pps = 50000;
  PeerStreamSender tx(w.tb->peer(), 200, sp);
  w.tb->start();
  tx.start();
  w.tb->sim().run_for(msec(100));
  EXPECT_GT(coalescer.raised(), 0);
  EXPECT_GT(coalescer.suppressed(), coalescer.raised());
  // Data still flows (held interrupts delay but never lose packets).
  EXPECT_GT(rx.packets_received(), 2000);
}

TEST(Coalescer, TimeoutFlushesLoneInterrupt) {
  BaselineWorld w;
  InterruptCoalescer::Params p;
  p.batch = 64;          // never reached by a single ping
  p.timeout = usec(200);
  InterruptCoalescer coalescer(w.tb->backend(), p);
  PingResponder responder(w.tb->guest(), w.tb->frontend(), 7);
  PingClient ping(w.tb->peer(), 7, msec(5));
  w.tb->start();
  ping.start();
  w.tb->sim().run_for(msec(50));
  EXPECT_GT(coalescer.timeout_flushes(), 5);
  EXPECT_GE(ping.rtt().count(), 8);
  // Every echo pays roughly the timeout.
  EXPECT_GT(ping.rtt().p50(), usec(150));
}

TEST(Coalescer, AddsLatencyComparedToStock) {
  auto rtt_with = [](bool coalesce) {
    BaselineWorld w;
    std::unique_ptr<InterruptCoalescer> c;
    if (coalesce) {
      InterruptCoalescer::Params p;
      p.batch = 8;
      p.timeout = usec(100);
      c = std::make_unique<InterruptCoalescer>(w.tb->backend(), p);
    }
    PingResponder responder(w.tb->guest(), w.tb->frontend(), 7);
    PingClient ping(w.tb->peer(), 7, msec(2));
    w.tb->start();
    ping.start();
    w.tb->sim().run_for(msec(60));
    return ping.rtt().p50();
  };
  EXPECT_GT(rtt_with(true), rtt_with(false) + usec(50));
}

TEST(PollModeDriver, EliminatesDeviceInterrupts) {
  BaselineWorld w;
  PollModeDriverTask pmd(w.tb->guest(), w.tb->frontend(), 0);
  w.tb->guest().add_task(pmd);
  NetperfReceiver rx(w.tb->guest(), w.tb->frontend(), 200, Proto::kUdp);
  PeerStreamSender::Params sp;
  sp.proto = Proto::kUdp;
  sp.udp_rate_pps = 50000;
  PeerStreamSender tx(w.tb->peer(), 200, sp);
  w.tb->start();
  tx.start();
  w.tb->sim().run_for(msec(100));
  EXPECT_GT(pmd.polled_packets(), 3000);
  EXPECT_EQ(w.tb->backend().rx_irqs(), 0);
  EXPECT_GT(rx.packets_received(), 3000);
}

TEST(PollModeDriver, WastesCpuAtLowLoad) {
  BaselineWorld w;
  PollModeDriverTask pmd(w.tb->guest(), w.tb->frontend(), 0);
  w.tb->guest().add_task(pmd);
  // No traffic at all: every poll is wasted, and the driver still burns
  // the vCPU (the paper's §II-C critique).
  w.tb->start();
  w.tb->sim().run_for(msec(50));
  EXPECT_GT(pmd.wasted_polls(), 1000);
  EXPECT_DOUBLE_EQ(pmd.wasted_fraction(), 1.0);
  EXPECT_FALSE(w.tb->tested_vm().vcpu(0).halted());
}

// --- ELI/DID exit-less direct delivery ------------------------------------

class EliGuest final : public GuestCpu {
 public:
  explicit EliGuest(Vm& vm) : vm_(vm) { vm.set_guest(this); }
  void run(int i) override {
    vm_.vcpu(i).guest_exec(115000, [this, i] { run(i); });
  }
  void take_interrupt(int i, Vector) override {
    ++irqs;
    Vcpu& v = vm_.vcpu(i);
    v.guest_exec(2000, [&v] { v.guest_eoi([&v] { v.irq_done(); }); });
  }
  Vm& vm_;
  int irqs = 0;
};

TEST(ExitlessDirect, NoExitsOnDedicatedCore) {
  Simulator sim(1);
  KvmHost host(sim, 2);
  Vm& vm = host.create_vm("eli", {0}, InterruptVirtMode::kExitlessDirect);
  vm.set_timer_hz(0);
  EliGuest guest(vm);
  vm.start();
  sim.run_for(msec(1));
  vm.begin_stats_window();
  for (int i = 0; i < 10; ++i) {
    sim.after(usec(50) * (i + 1),
              [&vm] { vm.vcpu(0).deliver_interrupt(0x41); });
  }
  sim.run_for(msec(5));
  EXPECT_EQ(guest.irqs, 10);
  const ExitStats stats = vm.aggregate_stats();
  EXPECT_EQ(stats.count(ExitReason::kExternalInterrupt), 0);
  EXPECT_EQ(stats.count(ExitReason::kApicAccess), 0);
  EXPECT_EQ(vm.vcpu(0).eli_stalls(), 0);
  EXPECT_EQ(vm.vcpu(0).eli_hazards(), 0);
}

TEST(ExitlessDirect, StallsAndHazardsUnderMultiplexing) {
  Simulator sim(1);
  KvmHost host(sim, 2);
  // Two VMs stacked on core 0: the ELI VM's interrupts arrive while the
  // other VM often holds the core.
  Vm& eli_vm = host.create_vm("eli", {0}, InterruptVirtMode::kExitlessDirect);
  Vm& other = host.create_vm("other", {0}, InterruptVirtMode::kPostedInterrupt);
  eli_vm.set_timer_hz(0);
  other.set_timer_hz(0);
  EliGuest eli_guest(eli_vm);
  EliGuest other_guest(other);
  eli_vm.start();
  other.start();
  sim.run_for(msec(20));
  int delivered = 0;
  for (int i = 0; i < 40; ++i) {
    sim.after(msec(1) * (i + 1), [&eli_vm, &delivered] {
      eli_vm.vcpu(0).deliver_interrupt(0x41);
      ++delivered;
    });
  }
  sim.run_for(msec(120));
  // Interrupts stall in the physical APIC while the other VM holds the
  // core; same-vector arrivals during a stall MERGE in the IRR (one bit
  // per vector), so fewer handler invocations than deliveries — another
  // face of ELI's interruptibility loss under multiplexing.
  EXPECT_GT(eli_guest.irqs, delivered / 2);
  EXPECT_LT(eli_guest.irqs, delivered);
  EXPECT_GT(eli_vm.vcpu(0).eli_stalls(), 5);
  EXPECT_GT(eli_vm.vcpu(0).eli_hazards(), 5);
}

}  // namespace
}  // namespace es2
