// Unit tests for the virtqueue notification protocol, the vhost worker,
// and Algorithm 1's mode-switch behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "virtio/vhost.h"
#include "virtio/virtqueue.h"

namespace es2 {
namespace {

Virtqueue::Entry dummy_entry() {
  Packet p;
  p.proto = Proto::kUdp;
  p.payload = 100;
  p.wire_size = 154;
  return Virtqueue::Entry{make_packet(std::move(p)), 154};
}

TEST(Virtqueue, CapacityAccountsAvailInflightUsed) {
  Virtqueue vq("q", 4);
  EXPECT_EQ(vq.free_slots(), 4);
  EXPECT_TRUE(vq.add_avail(dummy_entry()));
  EXPECT_TRUE(vq.add_avail(dummy_entry()));
  EXPECT_EQ(vq.free_slots(), 2);
  auto e = vq.pop_avail();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(vq.in_flight(), 1);
  EXPECT_EQ(vq.free_slots(), 2);  // in-flight still owns the descriptor
  vq.push_used(std::move(*e));
  EXPECT_EQ(vq.free_slots(), 2);  // used still owns it
  vq.pop_used();
  EXPECT_EQ(vq.free_slots(), 3);  // only now reclaimed
}

TEST(Virtqueue, AddFailsWhenFull) {
  Virtqueue vq("q", 2);
  EXPECT_TRUE(vq.add_avail(dummy_entry()));
  EXPECT_TRUE(vq.add_avail(dummy_entry()));
  EXPECT_FALSE(vq.add_avail(dummy_entry()));
}

TEST(Virtqueue, FirstAddKicks) {
  Virtqueue vq("q", 8);
  ASSERT_TRUE(vq.add_avail(dummy_entry()));
  EXPECT_TRUE(vq.kick_needed());
}

TEST(Virtqueue, EventIdxKicksOncePerArm) {
  Virtqueue vq("q", 8);
  vq.add_avail(dummy_entry());
  EXPECT_TRUE(vq.kick_needed());  // crossed avail_event
  vq.add_avail(dummy_entry());
  EXPECT_FALSE(vq.kick_needed());  // host has not re-armed
  vq.add_avail(dummy_entry());
  EXPECT_FALSE(vq.kick_needed());
  // Host drains and re-arms.
  while (vq.pop_avail()) {
  }
  vq.enable_notifications();
  vq.add_avail(dummy_entry());
  EXPECT_TRUE(vq.kick_needed());
}

TEST(Virtqueue, DisabledNotificationsSuppressKicks) {
  Virtqueue vq("q", 8);
  vq.disable_notifications();
  vq.add_avail(dummy_entry());
  EXPECT_FALSE(vq.kick_needed());
  EXPECT_FALSE(vq.notifications_enabled());
}

TEST(Virtqueue, EnableNotificationsReportsRace) {
  Virtqueue vq("q", 8);
  vq.disable_notifications();
  vq.add_avail(dummy_entry());
  EXPECT_TRUE(vq.enable_notifications());  // work raced in
  while (vq.pop_avail()) {
  }
  EXPECT_FALSE(vq.enable_notifications());
}

TEST(Virtqueue, InterruptMirrorsKickSemantics) {
  Virtqueue vq("q", 8);
  for (int i = 0; i < 3; ++i) vq.add_avail(dummy_entry());
  auto a = vq.pop_avail();
  vq.push_used(std::move(*a));
  EXPECT_TRUE(vq.interrupt_needed());  // crossed used_event
  auto b = vq.pop_avail();
  vq.push_used(std::move(*b));
  EXPECT_FALSE(vq.interrupt_needed());  // guest has not re-armed
  vq.pop_used();
  vq.pop_used();
  vq.enable_interrupts();
  auto c = vq.pop_avail();
  vq.push_used(std::move(*c));
  EXPECT_TRUE(vq.interrupt_needed());
}

TEST(Virtqueue, DisabledInterruptsSuppress) {
  Virtqueue vq("q", 8);
  vq.disable_interrupts();
  vq.add_avail(dummy_entry());
  auto a = vq.pop_avail();
  vq.push_used(std::move(*a));
  EXPECT_FALSE(vq.interrupt_needed());
}

// ---------------------------------------------------------------------------
// VhostWorker
// ---------------------------------------------------------------------------

class CountingHandler final : public VqHandler {
 public:
  CountingHandler() : VqHandler("counting") {}
  void service(VhostWorker& worker, std::function<void(bool)> done) override {
    ++turns;
    worker.exec(2300 /* 1us */, [this, done = std::move(done)] {
      done(requeues_left > 0 && requeues_left--);
    });
  }
  int turns = 0;
  int requeues_left = 0;
};

struct WorkerWorld {
  WorkerWorld() : sim(1), host(sim, 2), worker(host, "w", 1, usec(20), usec(2), usec(2), 0.0) {}
  Simulator sim;
  KvmHost host;
  VhostWorker worker;
};

TEST(VhostWorker, ActivationRunsHandlerOnce) {
  WorkerWorld w;
  CountingHandler h;
  w.worker.activate(h);
  w.sim.run_for(msec(1));
  EXPECT_EQ(h.turns, 1);
  EXPECT_EQ(w.worker.thread().state(), SimThread::State::kBlocked);
}

TEST(VhostWorker, ActivationIsIdempotentWhileQueued) {
  WorkerWorld w;
  CountingHandler h;
  w.worker.activate(h);
  w.worker.activate(h);
  w.worker.activate(h);
  w.sim.run_for(msec(1));
  EXPECT_EQ(h.turns, 1);
}

TEST(VhostWorker, RequeueHonoursRequeueDelay) {
  WorkerWorld w;
  CountingHandler h;
  h.requeues_left = 1;
  w.worker.activate(h);
  w.sim.run_for(usec(10));
  EXPECT_EQ(h.turns, 1);  // second turn gated by the 20us requeue delay
  w.sim.run_for(usec(40));
  EXPECT_EQ(h.turns, 2);
}

TEST(VhostWorker, RoundRobinsMultipleHandlers) {
  WorkerWorld w;
  CountingHandler a, b;
  a.requeues_left = 3;
  b.requeues_left = 3;
  w.worker.activate(a);
  w.worker.activate(b);
  w.sim.run_for(msec(2));
  EXPECT_EQ(a.turns, 4);
  EXPECT_EQ(b.turns, 4);
}

// ---------------------------------------------------------------------------
// VhostNetBackend end-to-end through a worker (host side only)
// ---------------------------------------------------------------------------

class NullGuest final : public GuestCpu {
 public:
  explicit NullGuest(Vm& vm) : vm_(vm) { vm.set_guest(this); }
  void run(int vcpu_index) override { vm_.vcpu(vcpu_index).guest_halt(); }
  void take_interrupt(int vcpu_index, Vector) override {
    ++irqs;
    Vcpu& vcpu = vm_.vcpu(vcpu_index);
    vcpu.guest_exec(1000, [&vcpu] {
      vcpu.guest_eoi([&vcpu] { vcpu.irq_done(); });
    });
  }
  Vm& vm_;
  int irqs = 0;
};

struct BackendWorld {
  BackendWorld()
      : sim(1),
        host(sim, 2),
        vm(host.create_vm("vm", {0}, InterruptVirtMode::kPostedInterrupt)),
        guest(vm),
        link(sim, 40.0, 1000),
        worker(host, "w", 1),
        backend(vm, worker, link) {
    vm.set_timer_hz(0);
    link.set_receiver([this](PacketPtr p) { wire.push_back(std::move(p)); });
  }
  Simulator sim;
  KvmHost host;
  Vm& vm;
  NullGuest guest;
  Link link;
  VhostWorker worker;
  VhostNetBackend backend;
  std::vector<PacketPtr> wire;
};

TEST(VhostNetBackend, TxDrainsQueueToWire) {
  BackendWorld w;
  w.vm.start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(w.backend.tx_vq().add_avail(dummy_entry()));
  }
  w.backend.notify_tx();
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.wire.size(), 10u);
  EXPECT_EQ(w.backend.tx_packets(), 10);
  // All descriptors completed back to the guest.
  EXPECT_EQ(w.backend.tx_vq().used_count(), 10);
  // Queue drained below quota: back in notification mode.
  EXPECT_TRUE(w.backend.tx_vq().notifications_enabled());
}

TEST(VhostNetBackend, QuotaYieldKeepsNotificationsDisabled) {
  BackendWorld w;
  w.vm.start();
  w.backend.set_poll_quota(2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.backend.tx_vq().add_avail(dummy_entry()));
  }
  w.backend.notify_tx();
  // After the first turn (2 pops) the handler must requeue with
  // notifications still off — the non-exit polling mode.
  w.sim.run_for(usec(12));
  EXPECT_FALSE(w.backend.tx_vq().notifications_enabled());
  EXPECT_GE(w.backend.tx_quota_hits(), 1);
  w.sim.run_for(msec(1));
  // Eventually drains and reverts.
  EXPECT_TRUE(w.backend.tx_vq().notifications_enabled());
  EXPECT_GE(w.backend.tx_mode_reverts(), 1);
}

TEST(VhostNetBackend, RxDeliversIntoGuestBuffersAndRaisesIrq) {
  BackendWorld w;
  w.vm.start();
  // The guest has no driver here: post RX buffers by hand.
  while (w.backend.rx_vq().free_slots() > 0) {
    ASSERT_TRUE(w.backend.rx_vq().add_avail(Virtqueue::Entry{nullptr, 0}));
  }
  Packet p;
  p.proto = Proto::kUdp;
  p.payload = 64;
  p.wire_size = 118;
  w.backend.receive_from_wire(make_packet(std::move(p)));
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.backend.rx_packets(), 1);
  EXPECT_EQ(w.backend.rx_vq().used_count(), 1);
  EXPECT_EQ(w.guest.irqs, 1);
}

TEST(VhostNetBackend, SockBufferOverflowDrops) {
  BackendWorld w;
  // Do NOT start the VM/worker processing: freeze the worker by not
  // starting the vm and pre-filling beyond capacity.
  const int cap = w.backend.params().sock_buffer;
  for (int i = 0; i < cap + 10; ++i) {
    Packet p;
    p.proto = Proto::kUdp;
    p.payload = 64;
    p.wire_size = 118;
    w.backend.receive_from_wire(make_packet(std::move(p)));
  }
  EXPECT_EQ(w.backend.rx_dropped(), 10);
}

TEST(VhostNetBackend, RxStarvedOfBuffersWaitsForRefillKick) {
  BackendWorld w;
  w.vm.start();
  // No RX buffers posted at all.
  Packet p;
  p.proto = Proto::kUdp;
  p.payload = 64;
  p.wire_size = 118;
  w.backend.receive_from_wire(make_packet(std::move(p)));
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.backend.rx_packets(), 0);
  // The handler armed refill notifications; a guest buffer post + kick
  // resumes delivery.
  ASSERT_TRUE(w.backend.rx_vq().add_avail(Virtqueue::Entry{nullptr, 0}));
  EXPECT_TRUE(w.backend.rx_vq().kick_needed());
  w.backend.notify_rx();
  w.sim.run_for(msec(1));
  EXPECT_EQ(w.backend.rx_packets(), 1);
}

}  // namespace
}  // namespace es2
