// Trace-based event-path regression tests (compiled under -DES2_TRACE=ON
// only — they need the instrumentation call sites).
//
// These lock down the event path itself, not just aggregate counters:
//   * determinism — same seed, same workload => byte-identical traces;
//   * passivity — tracing a run must not change any of its metrics;
//   * the paper's core claim in trace form — posted interrupts remove
//     interrupt-delivery and EOI-completion VM exits from the path;
//   * chaos differential — a dropped-MSI plan shows the guest watchdog's
//     missed-interrupt NAPI poll recovering, after the drop.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "harness/experiments.h"
#include "trace/export.h"
#include "vm/exit.h"

namespace es2 {
namespace {

StreamOptions traced_stream(const Es2Config& config, bool vm_sends) {
  StreamOptions o;
  o.config = config;
  o.proto = Proto::kTcp;
  o.msg_size = 1024;
  o.vm_sends = vm_sends;
  o.warmup = msec(100);
  o.measure = msec(250);
  o.trace.enabled = true;
  o.trace.capacity = std::size_t{1} << 18;
  return o;
}

std::int64_t count_kind(const std::vector<TraceRecord>& records,
                        TraceKind kind) {
  return std::count_if(records.begin(), records.end(),
                       [kind](const TraceRecord& r) { return r.kind == kind; });
}

std::int64_t count_exits(const std::vector<TraceRecord>& records,
                         ExitReason reason) {
  const auto arg = static_cast<std::uint32_t>(reason);
  return std::count_if(records.begin(), records.end(),
                       [arg](const TraceRecord& r) {
                         return r.kind == TraceKind::kVmExit && r.arg == arg;
                       });
}

TEST(TracePath, SameSeedTracesAreByteIdentical) {
  const StreamOptions o = traced_stream(Es2Config::pi(), /*vm_sends=*/true);
  const StreamResult a = run_stream(o);
  const StreamResult b = run_stream(o);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  ASSERT_FALSE(a.trace->records.empty());
  EXPECT_EQ(to_binary(a.trace->records), to_binary(b.trace->records));
}

TEST(TracePath, TracingDoesNotPerturbTheRun) {
  StreamOptions traced = traced_stream(Es2Config::baseline(), true);
  StreamOptions plain = traced;
  plain.trace = TraceOptions{};  // same run, tracing off
  const StreamResult with = run_stream(traced);
  const StreamResult without = run_stream(plain);
  ASSERT_NE(with.trace, nullptr);
  EXPECT_EQ(without.trace, nullptr);
  EXPECT_DOUBLE_EQ(with.throughput_mbps, without.throughput_mbps);
  EXPECT_DOUBLE_EQ(with.packets_per_sec, without.packets_per_sec);
  EXPECT_DOUBLE_EQ(with.kicks_per_sec, without.kicks_per_sec);
  EXPECT_DOUBLE_EQ(with.guest_irqs_per_sec, without.guest_irqs_per_sec);
  EXPECT_DOUBLE_EQ(with.exits.total, without.exits.total);
}

TEST(TracePath, PostedInterruptsRemoveDeliveryAndEoiExits) {
  const StreamResult base =
      run_stream(traced_stream(Es2Config::baseline(), /*vm_sends=*/true));
  const StreamResult pi =
      run_stream(traced_stream(Es2Config::pi(), /*vm_sends=*/true));
  ASSERT_NE(base.trace, nullptr);
  ASSERT_NE(pi.trace, nullptr);

  // Baseline: kick-IPI delivery exits and trapped EOI writes on the path.
  EXPECT_GT(count_exits(base.trace->records, ExitReason::kExternalInterrupt),
            0);
  EXPECT_GT(count_exits(base.trace->records, ExitReason::kApicAccess), 0);
  EXPECT_GT(count_kind(base.trace->records, TraceKind::kLapicPost), 0);

  // PI: the same workload's trace has NO delivery or completion exits —
  // interrupts arrive via PIR posts and complete via virtual EOI.
  EXPECT_EQ(count_exits(pi.trace->records, ExitReason::kExternalInterrupt), 0);
  EXPECT_EQ(count_exits(pi.trace->records, ExitReason::kApicAccess), 0);
  EXPECT_GT(count_kind(pi.trace->records, TraceKind::kPiPost), 0);
  EXPECT_GT(count_kind(pi.trace->records, TraceKind::kEoi), 0);
}

TEST(TracePath, TracedRunStitchesCompleteJourneys) {
  const StreamResult r =
      run_stream(traced_stream(Es2Config::pi(), /*vm_sends=*/false));
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.stages.journeys, 0);
  EXPECT_GT(r.stages.complete, 0);
  EXPECT_GT(r.stages.end_to_end_p50, 0);
  EXPECT_GT(r.stages.msi_to_dispatch_p50, 0);
  EXPECT_GT(r.stages.dispatch_to_eoi_p50, 0);
}

TEST(TracePath, ChaosTraceShowsMissedMsiWatchdogRecovery) {
  // Differential chaos check, mirroring fault_test's
  // MissedMsiRecoveredByWatchdogNapiPoll but asserting on the *trace*:
  // the record stream must show MSIs being swallowed and, later, the
  // watchdog's recovery NAPI poll.
  ChaosStreamOptions co;
  co.stream = traced_stream(Es2Config::pi(), /*vm_sends=*/false);
  co.stream.measure = msec(300);
  // Large enough that ring wraparound cannot evict the first MSI drop.
  co.stream.trace.capacity = std::size_t{1} << 20;
  co.faults.msi_loss = 0.2;
  co.tx_watchdog = true;
  co.budget.max_sim_time = sec(2);
  const ChaosStreamResult r = run_chaos_stream(co, "trace-msi-recover");
  ASSERT_EQ(r.report.status, ScenarioStatus::kOk);
  ASSERT_NE(r.stream.trace, nullptr);
  const std::vector<TraceRecord>& records = r.stream.trace->records;

  EXPECT_GT(count_kind(records, TraceKind::kMsiDrop), 0);
  SimTime first_drop = -1;
  SimTime first_recover = -1;
  for (const TraceRecord& rec : records) {
    if (rec.kind == TraceKind::kMsiDrop && first_drop < 0) first_drop = rec.t;
    if (rec.kind == TraceKind::kWatchdogRecover && rec.arg == 1 &&
        first_recover < 0) {
      first_recover = rec.t;
    }
  }
  ASSERT_GE(first_drop, 0);
  ASSERT_GE(first_recover, 0) << "no watchdog RX recovery in the trace";
  EXPECT_GT(first_recover, first_drop);
  EXPECT_GT(r.rx_watchdog_polls, 0);
}

}  // namespace
}  // namespace es2
