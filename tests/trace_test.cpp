// Tracer unit tests: ring-buffer wraparound, correlation-id plumbing, the
// span builder on hand-crafted record sequences, exporter round-trips and
// the zero-allocation guarantee on the hot emit path (this binary links
// es2_alloc_hook). These run in every build — the trace library itself is
// always compiled; only the model call sites are gated by ES2_TRACE.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/alloc_hook.h"
#include "harness/runner.h"
#include "sim/invariant_auditor.h"
#include "sim/simulator.h"
#include "trace/export.h"
#include "trace/span.h"
#include "trace/trace.h"

namespace es2 {
namespace {

Tracer make_tracer(std::size_t capacity) {
  TraceOptions o;
  o.enabled = true;
  o.capacity = capacity;
  return Tracer(o);
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

TEST(TracerRing, DisabledTracerDropsEverything) {
  Tracer tracer;  // constructed but never enabled
  tracer.emit(100, TraceKind::kKick, 0, 0, 1);
  EXPECT_EQ(tracer.emitted(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TracerRing, KeepsRecordsInEmitOrder) {
  Tracer tracer = make_tracer(64);
  tracer.enable();
  for (int i = 0; i < 10; ++i) {
    tracer.emit(i * 10, TraceKind::kVmExit, 0, 0, 2,
                static_cast<std::uint32_t>(i));
  }
  const std::vector<TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].t, i * 10);
    EXPECT_EQ(records[static_cast<std::size_t>(i)].arg,
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(records[static_cast<std::size_t>(i)].cpu, 2);
  }
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerRing, WraparoundKeepsTheNewestRecords) {
  Tracer tracer = make_tracer(8);
  tracer.enable();
  for (int i = 0; i < 20; ++i) {
    tracer.emit(i, TraceKind::kKick, 0, -1, -1);
  }
  EXPECT_EQ(tracer.emitted(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].t, 12 + i);
  }
}

TEST(TracerRing, CapacityCrossingSlabBoundaryGrowsCorrectly) {
  // 10000 > one 4096-record slab: forces multi-slab growth.
  Tracer tracer = make_tracer(10000);
  tracer.enable();
  for (int i = 0; i < 10000; ++i) {
    tracer.emit(i, TraceKind::kSchedIn, -1, -1, 0);
  }
  const std::vector<TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 10000u);
  EXPECT_EQ(records.front().t, 0);
  EXPECT_EQ(records.back().t, 9999);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Correlation plumbing
// ---------------------------------------------------------------------------

TEST(TracerCorr, JourneyIdsStartAtOneAndIncrement) {
  Tracer tracer = make_tracer(16);
  EXPECT_EQ(tracer.begin_journey(), 1u);
  EXPECT_EQ(tracer.begin_journey(), 2u);
  EXPECT_EQ(tracer.begin_journey(), 3u);
}

TEST(TracerCorr, InflightRegisterIsTakeOnce) {
  Tracer tracer = make_tracer(16);
  tracer.set_inflight(7);
  EXPECT_EQ(tracer.take_inflight(), 7u);
  EXPECT_EQ(tracer.take_inflight(), 0u);
}

TEST(TracerCorr, VectorMapIsKeyedAndConsuming) {
  Tracer tracer = make_tracer(16);
  tracer.remember_vector(0, 0, 33, 5);
  tracer.remember_vector(1, 2, 34, 9);
  EXPECT_EQ(tracer.vector_corr(0, 0, 33), 5u);  // peek does not consume
  EXPECT_EQ(tracer.vector_corr(0, 0, 33), 5u);
  EXPECT_EQ(tracer.take_vector_corr(0, 0, 33), 5u);
  EXPECT_EQ(tracer.take_vector_corr(0, 0, 33), 0u);
  EXPECT_EQ(tracer.take_vector_corr(1, 2, 34), 9u);
  // Unknown key and out-of-range coordinates are safe zeros.
  EXPECT_EQ(tracer.vector_corr(0, 0, 99), 0u);
  EXPECT_EQ(tracer.take_vector_corr(-1, 0, 33), 0u);
  EXPECT_EQ(tracer.vector_corr(0, 500, 33), 0u);
}

TEST(TracerCorr, ServiceStackNestsPerVcpu) {
  Tracer tracer = make_tracer(16);
  EXPECT_EQ(tracer.current_service(0, 0), 0u);
  EXPECT_EQ(tracer.pop_service(0, 0), 0u);  // pop on empty is a safe zero
  tracer.push_service(0, 0, 11);
  tracer.push_service(0, 0, 22);  // nested interrupt
  tracer.push_service(0, 1, 33);  // different vcpu, independent stack
  EXPECT_EQ(tracer.current_service(0, 0), 22u);
  EXPECT_EQ(tracer.current_service(0, 1), 33u);
  EXPECT_EQ(tracer.pop_service(0, 0), 22u);
  EXPECT_EQ(tracer.current_service(0, 0), 11u);
  EXPECT_EQ(tracer.pop_service(0, 0), 11u);
  EXPECT_EQ(tracer.pop_service(0, 1), 33u);
}

TEST(TracerCorr, LastCorrTracksMostRecentCorrelatedEmit) {
  Tracer tracer = make_tracer(16);
  tracer.enable();
  EXPECT_EQ(tracer.last_corr(), 0u);
  tracer.emit(1, TraceKind::kKick, 0, -1, -1, 0, 42);
  tracer.emit(2, TraceKind::kSchedIn, -1, -1, 0);  // uncorrelated: no change
  EXPECT_EQ(tracer.last_corr(), 42u);
  tracer.emit(3, TraceKind::kMsiRaise, 0, -1, -1, 0, 43);
  EXPECT_EQ(tracer.last_corr(), 43u);
}

// ---------------------------------------------------------------------------
// Span builder
// ---------------------------------------------------------------------------

TEST(SpanBuilder, StitchesOneCompleteJourney) {
  Tracer tracer = make_tracer(64);
  tracer.enable();
  tracer.emit(100, TraceKind::kKick, 0, -1, -1, 0, 7);
  tracer.emit(250, TraceKind::kWorkerTurn, 0, -1, 4, 0, 7);
  tracer.emit(400, TraceKind::kMsiRaise, 0, -1, 4, 33, 7);
  tracer.emit(600, TraceKind::kIrqDispatch, 0, 0, 1, 33, 7);
  tracer.emit(900, TraceKind::kEoi, 0, 0, 1, 0, 7);

  std::vector<JourneySpan> spans;
  const SpanBreakdown b = build_spans(tracer.snapshot(), &spans);
  ASSERT_EQ(spans.size(), 1u);
  const JourneySpan& s = spans[0];
  EXPECT_EQ(s.corr, 7u);
  EXPECT_EQ(s.vm, 0);
  EXPECT_EQ(s.vcpu, 0);
  EXPECT_EQ(s.kick, 100);
  EXPECT_EQ(s.backend, 250);
  EXPECT_EQ(s.msi, 400);
  EXPECT_EQ(s.dispatch, 600);
  EXPECT_EQ(s.eoi, 900);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.start(), 100);

  EXPECT_EQ(b.journeys, 1);
  EXPECT_EQ(b.complete, 1);
  EXPECT_EQ(b.partial, 0);
  EXPECT_EQ(b.kick_to_backend.count(), 1);
  EXPECT_EQ(b.backend_to_msi.count(), 1);
  EXPECT_EQ(b.msi_to_dispatch.count(), 1);
  EXPECT_EQ(b.dispatch_to_eoi.count(), 1);
  EXPECT_EQ(b.end_to_end.count(), 1);
  // Log-bucketed histogram: ~3% relative error bound.
  EXPECT_NEAR(static_cast<double>(b.kick_to_backend.p50()), 150.0, 15.0);
  EXPECT_NEAR(static_cast<double>(b.dispatch_to_eoi.p50()), 300.0, 30.0);
  EXPECT_NEAR(static_cast<double>(b.end_to_end.p50()), 800.0, 80.0);
}

TEST(SpanBuilder, LandmarksRecordFirstOccurrenceOnly) {
  // A coalesced journey posts twice; the span keeps the earliest MSI.
  Tracer tracer = make_tracer(64);
  tracer.enable();
  tracer.emit(100, TraceKind::kKick, 0, -1, -1, 0, 3);
  tracer.emit(200, TraceKind::kMsiRaise, 0, -1, 4, 33, 3);
  tracer.emit(300, TraceKind::kPiCoalesced, 0, 0, 4, 33, 3);
  std::vector<JourneySpan> spans;
  build_spans(tracer.snapshot(), &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].msi, 200);
}

TEST(SpanBuilder, WireRxOpensTheJourneyLikeAKick) {
  Tracer tracer = make_tracer(64);
  tracer.enable();
  tracer.emit(50, TraceKind::kWireRx, 0, -1, -1, 0, 9);
  tracer.emit(180, TraceKind::kWorkerTurn, 0, -1, 4, 1, 9);
  tracer.emit(320, TraceKind::kMsiRaise, 0, -1, 4, 34, 9);
  tracer.emit(500, TraceKind::kIrqDispatch, 0, 0, 0, 34, 9);
  tracer.emit(700, TraceKind::kEoi, 0, 0, 0, 0, 9);
  std::vector<JourneySpan> spans;
  const SpanBreakdown b = build_spans(tracer.snapshot(), &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kick, 50);
  EXPECT_TRUE(spans[0].complete());
  EXPECT_EQ(b.complete, 1);
}

TEST(SpanBuilder, PartialJourneysFeedTheStagesTheyCompleted) {
  Tracer tracer = make_tracer(64);
  tracer.enable();
  // Journey 1: kick serviced, interrupt suppressed — no msi/dispatch/eoi.
  tracer.emit(100, TraceKind::kKick, 0, -1, -1, 0, 1);
  tracer.emit(260, TraceKind::kWorkerTurn, 0, -1, 4, 0, 1);
  // Journey 2: timer-style — no kick, straight to post/dispatch/eoi.
  tracer.emit(400, TraceKind::kPiPost, 0, 0, 1, 48, 2);
  tracer.emit(550, TraceKind::kIrqDispatch, 0, 0, 1, 48, 2);
  tracer.emit(800, TraceKind::kEoi, 0, 0, 1, 0, 2);

  std::vector<JourneySpan> spans;
  const SpanBreakdown b = build_spans(tracer.snapshot(), &spans);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_FALSE(spans[0].complete());
  EXPECT_TRUE(spans[1].complete());
  EXPECT_EQ(spans[1].kick, -1);
  EXPECT_EQ(b.journeys, 2);
  EXPECT_EQ(b.complete, 1);
  EXPECT_EQ(b.partial, 1);
  EXPECT_EQ(b.kick_to_backend.count(), 1);   // journey 1 only
  EXPECT_EQ(b.msi_to_dispatch.count(), 1);   // journey 2 only
  EXPECT_EQ(b.dispatch_to_eoi.count(), 1);
  EXPECT_EQ(b.end_to_end.count(), 1);        // journey 2: first landmark->eoi
}

TEST(SpanBuilder, UncorrelatedRecordsFormNoJourney) {
  Tracer tracer = make_tracer(64);
  tracer.enable();
  tracer.emit(10, TraceKind::kSchedIn, -1, -1, 0, 5);
  tracer.emit(20, TraceKind::kVmExit, 0, 0, 1, 2);
  std::vector<JourneySpan> spans;
  const SpanBreakdown b = build_spans(tracer.snapshot(), &spans);
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(b.journeys, 0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

std::vector<TraceRecord> sample_records() {
  Tracer tracer = make_tracer(64);
  tracer.enable();
  tracer.emit(100, TraceKind::kKick, 0, -1, -1, 0, 7);
  tracer.emit(250, TraceKind::kWorkerTurn, 0, -1, 4, 0, 7);
  tracer.emit(400, TraceKind::kMsiRaise, 0, -1, 4, 33, 7);
  tracer.emit(600, TraceKind::kIrqDispatch, 0, 0, 1, 33, 7);
  tracer.emit(900, TraceKind::kEoi, 0, 0, 1, 0, 7);
  tracer.emit(950, TraceKind::kSchedOut, -1, -1, 1, 12);
  return tracer.snapshot();
}

TEST(TraceExport, BinaryRoundTripIsLossless) {
  const std::vector<TraceRecord> records = sample_records();
  const std::string blob = to_binary(records);
  EXPECT_EQ(blob.size(), 16u + records.size() * 24u);
  std::vector<TraceRecord> back;
  ASSERT_TRUE(read_binary(blob, &back));
  EXPECT_EQ(back, records);
}

TEST(TraceExport, BinaryReaderRejectsCorruptInput) {
  const std::string blob = to_binary(sample_records());
  std::vector<TraceRecord> out;

  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(read_binary(bad_magic, &out));
  EXPECT_TRUE(out.empty());

  std::string truncated = blob.substr(0, blob.size() - 5);
  EXPECT_FALSE(read_binary(truncated, &out));
  EXPECT_TRUE(out.empty());

  EXPECT_FALSE(read_binary(std::string("ES"), &out));
}

TEST(TraceExport, EmptyTraceRoundTrips) {
  std::vector<TraceRecord> out{TraceRecord{}};
  ASSERT_TRUE(read_binary(to_binary({}), &out));
  EXPECT_TRUE(out.empty());
}

TEST(TraceExport, PerfettoJsonIsStructurallyValid) {
  std::vector<JourneySpan> spans;
  std::vector<TraceRecord> records = sample_records();
  build_spans(records, &spans);
  const std::string json = to_perfetto_json(records, spans);
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("msi_raise"), std::string::npos);
}

TEST(TraceExport, JsonValidatorRejectsMalformedInput) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("{\"a\": [1, 2.5, \"x\", null, true]}"));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\": }"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid(""));
}

// ---------------------------------------------------------------------------
// Zero allocations on the hot path (this binary links es2_alloc_hook)
// ---------------------------------------------------------------------------

TEST(TracerAlloc, SteadyStateEmitAllocatesNothing) {
  constexpr std::size_t kCapacity = 1 << 12;
  Tracer tracer = make_tracer(kCapacity);
  tracer.enable();
  // Warm up: fill the ring completely (allocates its slabs) and touch the
  // correlation structures for every (vm, vcpu) the loop below uses.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    tracer.emit(static_cast<SimTime>(i), TraceKind::kVmExit, 0, 0, 1);
  }
  tracer.remember_vector(0, 0, 33, 1);
  (void)tracer.take_vector_corr(0, 0, 33);
  tracer.push_service(0, 0, 1);
  (void)tracer.pop_service(0, 0);

  test::AllocationCounter counter;
  for (std::size_t i = 0; i < 3 * kCapacity; ++i) {
    const std::uint64_t corr = tracer.begin_journey();
    tracer.emit(static_cast<SimTime>(i), TraceKind::kKick, 0, 0, 1, 0, corr);
    tracer.set_inflight(corr);
    tracer.emit(static_cast<SimTime>(i), TraceKind::kMsiRaise, 0, 0, 4, 33,
                tracer.take_inflight());
    tracer.remember_vector(0, 0, 33, corr);
    tracer.push_service(0, 0, tracer.take_vector_corr(0, 0, 33));
    tracer.emit(static_cast<SimTime>(i), TraceKind::kEoi, 0, 0, 1, 0,
                tracer.pop_service(0, 0));
  }
  EXPECT_EQ(counter.delta(), 0);
  EXPECT_GT(tracer.dropped(), 0u);  // the ring really wrapped
}

// ---------------------------------------------------------------------------
// Audit / watchdog reports carry the nearest correlation id
// ---------------------------------------------------------------------------

TEST(TraceAnnotation, AuditorViolationCarriesNearestCorr) {
  Simulator sim(1);
  Tracer tracer = make_tracer(64);
  tracer.enable();
  sim.set_tracer(&tracer);
  tracer.emit(0, TraceKind::kKick, 0, -1, -1, 0, 42);

  InvariantAuditor auditor(sim);
  auditor.add_check("always-fails", [] {
    return std::optional<std::string>("synthetic violation");
  });
  EXPECT_EQ(auditor.run_now(), 1);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].corr, 42u);
  EXPECT_NE(auditor.violations()[0].message.find("corr=42"),
            std::string::npos);
}

TEST(TraceAnnotation, AuditorWithoutTracerLeavesCorrZero) {
  Simulator sim(1);
  InvariantAuditor auditor(sim);
  auditor.add_check("always-fails", [] {
    return std::optional<std::string>("synthetic violation");
  });
  EXPECT_EQ(auditor.run_now(), 1);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].corr, 0u);
  EXPECT_EQ(auditor.violations()[0].message.find("corr="), std::string::npos);
}

TEST(TraceAnnotation, WatchdogTripCarriesNearestCorr) {
  Simulator sim(1);
  Tracer tracer = make_tracer(64);
  tracer.enable();
  sim.set_tracer(&tracer);
  tracer.emit(0, TraceKind::kMsiRaise, 0, -1, 4, 33, 42);

  ScenarioBudget budget;
  budget.max_sim_time = msec(1);
  // Slices shorter than the span so the budget check runs mid-span (the
  // watchdog only checks budgets between slices).
  budget.progress_window = msec(1);
  ScenarioWatchdog wd(sim, budget);
  // run_until advances the clock even with an empty queue, so this span
  // blows the sim-time budget and trips the watchdog.
  EXPECT_FALSE(wd.run_for(msec(10), nullptr));
  EXPECT_EQ(wd.status(), ScenarioStatus::kSimTimeBudget);
  const ScenarioReport report = wd.report("trace-corr");
  EXPECT_NE(report.detail.find("corr=42"), std::string::npos);
}

}  // namespace
}  // namespace es2
