// Tests for the parallel sweep runner: shared-work-index balancing under
// skewed task durations, completeness, determinism of result slots, and
// exception propagation out of worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/parallel.h"

namespace es2 {
namespace {

using Clock = std::chrono::steady_clock;

TEST(ParallelRunner, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> ran(64);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&ran, i] { ran[static_cast<size_t>(i)]++; });
  }
  ParallelRunner(4).run(std::move(tasks));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(ran[static_cast<size_t>(i)], 1);
}

TEST(ParallelRunner, SkewedTaskDurationsDoNotTailStall) {
  // One 150ms task among many short ones, two workers. A runner that
  // statically pre-partitions (e.g. contiguous halves or round-robin)
  // can strand several long tasks behind one worker; the shared work
  // index keeps the second worker pulling short tasks while the first
  // chews the long one. Budget is generous (2x the balanced optimum)
  // so the assertion stays robust on loaded CI machines.
  using std::chrono::milliseconds;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { std::this_thread::sleep_for(milliseconds(150)); });
  for (int i = 0; i < 30; ++i) {
    tasks.push_back([] { std::this_thread::sleep_for(milliseconds(5)); });
  }
  const auto start = Clock::now();
  ParallelRunner(2).run(std::move(tasks));
  const auto elapsed =
      std::chrono::duration_cast<milliseconds>(Clock::now() - start);
  // Balanced: max(150, 30*5) = 150ms. Serial: 300ms. A tail-stalled
  // split (long task plus half the short ones on one worker) is >= 225ms.
  EXPECT_LT(elapsed.count(), 290);
  EXPECT_GE(elapsed.count(), 150);
}

TEST(ParallelRunner, WorkIndexBalancesSkewAcrossWorkers) {
  // Direct (non-timing) check of dynamic pulling: with 2 workers and the
  // first task blocking until every other task has run, a static
  // pre-partition would deadlock or stall; the work queue finishes.
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&done] {
    while (done.load() < 15) std::this_thread::yield();
  });
  for (int i = 0; i < 15; ++i) {
    tasks.push_back([&done] { done.fetch_add(1); });
  }
  ParallelRunner(2).run(std::move(tasks));
  EXPECT_EQ(done.load(), 15);
}

TEST(ParallelRunner, ResultSlotsAreDeterministic) {
  std::vector<int> results(100, 0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&results, i] { results[static_cast<size_t>(i)] = i * i; });
  }
  ParallelRunner(8).run(std::move(tasks));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelRunner, PropagatesFirstExceptionAfterFinishingOthers) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("task 3 failed");
      if (i == 9) throw std::runtime_error("task 9 failed");
    });
  }
  try {
    ParallelRunner(4).run(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3 failed");
  }
  EXPECT_EQ(ran.load(), 16);  // remaining tasks still ran
}

TEST(ParallelRunner, SerialPathAlsoPropagates) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&ran] {
    ran.fetch_add(1);
    throw std::runtime_error("boom");
  });
  tasks.push_back([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(ParallelRunner(1).run(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelFor, CoversRange) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&hits](int i) { hits[static_cast<size_t>(i)]++; }, 8);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 257);
}

}  // namespace
}  // namespace es2
