// Chaos-layer tests: seeded fault injection, the recovery paths it
// exercises (TCP retransmit, guest TX watchdog, vhost RX re-poll), the
// invariant auditor, and the no-progress watchdog.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/netperf.h"
#include "base/log.h"
#include "fault/fault.h"
#include "harness/experiments.h"
#include "harness/runner.h"
#include "net/link.h"
#include "net/peer.h"
#include "sim/invariant_auditor.h"
#include "sim/simulator.h"

namespace es2 {
namespace {

// ---------------------------------------------------------------------------
// LogRateLimiter
// ---------------------------------------------------------------------------

TEST(LogRateLimiter, AllowsUpToMaxPerWindowThenSuppresses) {
  LogRateLimiter rl(msec(1), 2);
  std::int64_t suppressed = -1;
  EXPECT_TRUE(rl.allow(usec(10), &suppressed));
  EXPECT_EQ(suppressed, 0);
  EXPECT_TRUE(rl.allow(usec(20), &suppressed));
  EXPECT_FALSE(rl.allow(usec(30), &suppressed));
  EXPECT_FALSE(rl.allow(usec(40), &suppressed));
  // New window: allowed again, and the caller learns what was dropped.
  EXPECT_TRUE(rl.allow(msec(1) + usec(10), &suppressed));
  EXPECT_EQ(suppressed, 2);
  EXPECT_EQ(rl.total_suppressed(), 2);
}

TEST(LogRateLimiter, UnlimitedWhenMaxIsZeroOrNegative) {
  LogRateLimiter rl(msec(1), 0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rl.allow(usec(i)));
  EXPECT_EQ(rl.total_suppressed(), 0);
}

// ---------------------------------------------------------------------------
// FaultInjector primitives
// ---------------------------------------------------------------------------

TEST(FaultInjector, AllOffPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.kick_loss = 0.5;
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultInjector, CertainLossDropsEveryPacket) {
  Simulator sim(1);
  FaultPlan plan;
  plan.link_loss = 1.0;
  FaultInjector fi(sim, plan);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(fi.drop_packet());
  EXPECT_EQ(fi.stats().link_dropped, 64);
}

TEST(FaultInjector, GilbertElliottBadStateDropsAtItsOwnRate) {
  Simulator sim(1);
  FaultPlan plan;
  // Enter the bad state on the first packet and never leave; the bad
  // state drops everything while the i.i.d. floor stays zero.
  plan.link_burst.p_good_to_bad = 1.0;
  plan.link_burst.p_bad_to_good = 0.0;
  plan.link_burst.loss_bad = 1.0;
  FaultInjector fi(sim, plan);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(fi.drop_packet());
}

TEST(FaultInjector, KickFateDistributionFollowsPlan) {
  Simulator sim(7);
  FaultPlan plan;
  plan.kick_loss = 1.0;
  FaultInjector drop_all(sim, plan);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(drop_all.kick_fate(), FaultInjector::KickFate::kDrop);
  }
  FaultPlan delay_plan;
  delay_plan.kick_delay_prob = 1.0;
  delay_plan.kick_delay = usec(3);
  FaultInjector delay_all(sim, delay_plan);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(delay_all.kick_fate(), FaultInjector::KickFate::kDelay);
  }
  EXPECT_EQ(delay_all.kick_delay(), usec(3));
  EXPECT_EQ(delay_all.stats().kicks_delayed, 16);
}

TEST(FaultInjector, WorkerStallIsPositiveWhenCertain) {
  Simulator sim(3);
  FaultPlan plan;
  plan.worker_stall_prob = 1.0;
  plan.worker_stall = usec(100);
  FaultInjector fi(sim, plan);
  for (int i = 0; i < 16; ++i) EXPECT_GT(fi.worker_stall(), 0);
  EXPECT_EQ(fi.stats().worker_stalls, 16);
}

// ---------------------------------------------------------------------------
// Link-level injection
// ---------------------------------------------------------------------------

PacketPtr test_packet(std::uint64_t flow) {
  Packet p;
  p.flow = flow;
  p.payload = 1000;
  p.wire_size = 1040;
  return make_packet(std::move(p));
}

TEST(LinkFaults, CertainLossCountsDropsAndDeliversNothing) {
  Simulator sim(1);
  Link link(sim, 40.0, usec(1));
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  FaultPlan plan;
  plan.link_loss = 1.0;
  FaultInjector fi(sim, plan);
  link.set_fault_injector(&fi);
  for (int i = 0; i < 20; ++i) link.transmit(test_packet(1));
  sim.run_for(msec(10));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.packets_dropped(), 20);
  EXPECT_EQ(link.packets_sent(), 20);  // the sender still serialized them
}

TEST(LinkFaults, CertainDuplicationDeliversEveryPacketTwice) {
  Simulator sim(1);
  Link link(sim, 40.0, usec(1));
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  FaultPlan plan;
  plan.link_duplicate = 1.0;
  FaultInjector fi(sim, plan);
  link.set_fault_injector(&fi);
  for (int i = 0; i < 10; ++i) link.transmit(test_packet(1));
  sim.run_for(msec(10));
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(link.packets_dropped(), 0);
}

TEST(LinkFaults, PerfectLinkWithoutInjectorCountsNoDrops) {
  Simulator sim(1);
  Link link(sim, 40.0, usec(1));
  int delivered = 0;
  link.set_receiver([&](PacketPtr) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.transmit(test_packet(1));
  sim.run_for(msec(10));
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(link.packets_dropped(), 0);
}

// ---------------------------------------------------------------------------
// run_until_capped / ScenarioWatchdog
// ---------------------------------------------------------------------------

TEST(RunUntilCapped, EventCapContainsSameTimestampLivelock) {
  Simulator sim(1);
  // A pathological event that re-schedules itself at the same instant:
  // run_until would never return.
  std::function<void()> spin = [&] { sim.at(sim.now(), spin); };
  sim.at(usec(1), spin);
  const std::uint64_t ran = sim.run_until_capped(msec(1), 1000);
  EXPECT_EQ(ran, 1000u);
  // A capped stop must not claim the deadline as its clock.
  EXPECT_EQ(sim.now(), usec(1));
}

TEST(RunUntilCapped, UncappedSpanAdvancesToDeadline) {
  Simulator sim(1);
  int fired = 0;
  sim.at(usec(5), [&] { ++fired; });
  const std::uint64_t ran = sim.run_until_capped(msec(1), 1000);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), msec(1));
}

TEST(ScenarioWatchdog, TripsOnEventBudgetDuringLivelock) {
  Simulator sim(1);
  std::function<void()> spin = [&] { sim.at(sim.now(), spin); };
  sim.at(usec(1), spin);
  ScenarioBudget budget;
  budget.max_events = 5000;
  budget.progress_window = usec(100);
  ScenarioWatchdog wd(sim, budget);
  EXPECT_FALSE(wd.run_for(msec(10), nullptr));
  EXPECT_EQ(wd.status(), ScenarioStatus::kEventBudget);
  const ScenarioReport report = wd.report("livelock");
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_line().find("WATCHDOG livelock"), std::string::npos);
}

TEST(ScenarioWatchdog, TripsOnFlatProgressWhileEventsChurn) {
  Simulator sim(1);
  // Busy but useless: a periodic timer churns events without any progress.
  PeriodicTimer ticker(sim, usec(10), [] {});
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;
  ScenarioWatchdog wd(sim, budget);
  EXPECT_FALSE(wd.run_for(msec(10), [] { return std::int64_t{42}; }));
  EXPECT_EQ(wd.status(), ScenarioStatus::kNoProgress);
}

TEST(ScenarioWatchdog, HealthySpanWithProgressPasses) {
  Simulator sim(1);
  std::int64_t work = 0;
  PeriodicTimer ticker(sim, usec(10), [&] { ++work; });
  ticker.start();
  ScenarioBudget budget;
  budget.progress_window = usec(100);
  budget.stall_windows = 4;
  ScenarioWatchdog wd(sim, budget);
  EXPECT_TRUE(wd.run_for(msec(5), [&] { return work; }));
  EXPECT_TRUE(wd.ok());
  EXPECT_EQ(sim.now(), msec(5));
}

TEST(ScenarioWatchdog, TripsOnSimTimeBudget) {
  Simulator sim(1);
  PeriodicTimer ticker(sim, usec(50), [] {});
  ticker.start();
  ScenarioBudget budget;
  budget.max_sim_time = msec(2);
  budget.progress_window = usec(100);
  ScenarioWatchdog wd(sim, budget);
  std::int64_t fake_progress = 0;
  // Progress keeps moving, so only the sim-time ceiling can trip.
  EXPECT_FALSE(wd.run_for(msec(10), [&] { return ++fake_progress; }));
  EXPECT_EQ(wd.status(), ScenarioStatus::kSimTimeBudget);
}

// ---------------------------------------------------------------------------
// ExperimentRunner
// ---------------------------------------------------------------------------

TEST(ExperimentRunner, CollectsReportsAndFailuresDoNotAbortTheSweep) {
  ExperimentRunner runner(2);
  runner.add("ok", [](const std::string&) { return ScenarioReport{}; });
  runner.add("throws", [](const std::string&) -> ScenarioReport {
    throw std::runtime_error("boom");
  });
  runner.add("wedged", [](const std::string&) {
    ScenarioReport r;
    r.status = ScenarioStatus::kNoProgress;
    return r;
  });
  runner.run_all();
  ASSERT_EQ(runner.reports().size(), 3u);
  EXPECT_TRUE(runner.reports()[0].ok());
  EXPECT_EQ(runner.reports()[1].status, ScenarioStatus::kException);
  EXPECT_EQ(runner.reports()[1].detail, "boom");
  EXPECT_EQ(runner.reports()[2].status, ScenarioStatus::kNoProgress);
  EXPECT_FALSE(runner.all_ok());
  EXPECT_EQ(runner.exit_code(), 1);
}

// ---------------------------------------------------------------------------
// InvariantAuditor
// ---------------------------------------------------------------------------

TEST(InvariantAuditor, CatchesSeededViolationWithTimestamp) {
  Simulator sim(1);
  InvariantAuditor auditor(sim, usec(100));
  int sweep = 0;
  auditor.add_check("seeded", [&]() -> std::optional<std::string> {
    // Healthy for the first two sweeps, then persistently broken.
    if (++sweep < 3) return std::nullopt;
    return "index moved backwards";
  });
  auditor.start();
  sim.run_for(msec(1));
  auditor.stop();
  EXPECT_EQ(auditor.sweeps(), 10u);
  EXPECT_EQ(auditor.total_violations(), 8);
  EXPECT_FALSE(auditor.clean());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations()[0].check, "seeded");
  EXPECT_EQ(auditor.violations()[0].at, usec(300));
  EXPECT_EQ(auditor.violations()[0].message, "index moved backwards");
}

TEST(InvariantAuditor, RecordingIsCappedButCountingIsNot) {
  Simulator sim(1);
  InvariantAuditor auditor(sim, usec(10));
  auditor.add_check("always",
                    [] { return std::optional<std::string>("bad"); });
  auditor.start();
  sim.run_for(msec(2));  // 200 sweeps
  EXPECT_EQ(auditor.total_violations(), 200);
  EXPECT_EQ(static_cast<int>(auditor.violations().size()),
            InvariantAuditor::kMaxRecorded);
}

TEST(InvariantAuditor, StoppedAuditorSchedulesNothing) {
  Simulator sim(1);
  InvariantAuditor auditor(sim, usec(10));
  auditor.add_check("never", [] { return std::optional<std::string>("bad"); });
  // Never started: draining the queue runs zero events.
  EXPECT_EQ(sim.run_to_completion(), 0u);
  EXPECT_EQ(auditor.sweeps(), 0u);
}

// ---------------------------------------------------------------------------
// PeerStreamSender RTO machinery (minimal wire world, no VM)
// ---------------------------------------------------------------------------

struct BlackholeWorld {
  Simulator sim{1};
  DuplexLink link{sim, 40.0, usec(1)};
  PeerHost peer{sim, link.b_to_a};
  int swallowed = 0;

  BlackholeWorld() {
    // Everything the peer sends toward the "VM" disappears: no ACKs ever
    // come back, so the RTO path is the only thing running.
    link.b_to_a.set_receiver([this](PacketPtr) { ++swallowed; });
  }
};

TEST(PeerStreamSenderRto, BackoffCapThrottlesRetransmitStorm) {
  // With the cap at 0 the RTO never backs off and fires ~every rto; with a
  // generous cap the intervals stretch exponentially. Compare retransmit
  // counts over the same span.
  auto run_with_cap = [](int cap) {
    BlackholeWorld w;
    PeerStreamSender::Params p;
    p.rto = usec(200);
    p.max_rto_backoff = cap;
    PeerStreamSender sender(w.peer, 9, p);
    sender.start();
    w.sim.run_for(msec(20));
    sender.stop();
    return sender.retransmits();
  };
  const std::int64_t no_backoff = run_with_cap(0);
  const std::int64_t capped = run_with_cap(4);
  // ~100 firings without backoff; with shifts 1,2,4,8,16x the count
  // collapses. Loose bounds keep the test robust.
  EXPECT_GT(no_backoff, 50);
  EXPECT_LT(capped, no_backoff / 3);
  EXPECT_GT(capped, 0);
}

TEST(PeerStreamSenderRto, StopCancelsTheArmedRtoTimer) {
  BlackholeWorld w;
  PeerStreamSender::Params p;
  p.rto = msec(1);
  PeerStreamSender sender(w.peer, 9, p);
  sender.start();
  w.sim.run_for(msec(5));
  sender.stop();
  // Drain in-flight wire events; after that the queue must be empty — a
  // leaked RTO timer would keep re-arming forever.
  w.sim.run_for(msec(2));
  EXPECT_EQ(w.sim.run_to_completion(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end chaos scenarios (micro topology, short windows)
// ---------------------------------------------------------------------------

StreamOptions short_stream(const Es2Config& config, bool vm_sends) {
  StreamOptions o;
  o.config = config;
  o.vm_sends = vm_sends;
  o.warmup = msec(100);
  o.measure = msec(300);
  return o;
}

TEST(ChaosStream, FaultsOffMatchesPlainRunStreamExactly) {
  // The chaos harness with an all-off plan must not perturb the golden
  // event schedule: same seed => bit-identical metrics, auditor on or not.
  const StreamOptions o = short_stream(Es2Config::pi(), /*vm_sends=*/true);
  const StreamResult plain = run_stream(o);
  ChaosStreamOptions co;
  co.stream = o;
  co.audit = true;
  const ChaosStreamResult chaos = run_chaos_stream(co, "faults-off");
  EXPECT_EQ(chaos.report.status, ScenarioStatus::kOk);
  EXPECT_DOUBLE_EQ(chaos.stream.throughput_mbps, plain.throughput_mbps);
  EXPECT_DOUBLE_EQ(chaos.stream.packets_per_sec, plain.packets_per_sec);
  EXPECT_DOUBLE_EQ(chaos.stream.kicks_per_sec, plain.kicks_per_sec);
  EXPECT_EQ(chaos.stream.link_dropped, 0);
  EXPECT_EQ(chaos.fast_retransmits, 0);
  EXPECT_EQ(chaos.tx_watchdog_kicks, 0);
  EXPECT_EQ(chaos.rx_repolls, 0);
  EXPECT_GT(chaos.audit_sweeps, 0u);
  EXPECT_EQ(chaos.audit_violations, 0);
}

TEST(ChaosStream, OnePercentLossCompletesOnAllFourStacks) {
  const std::vector<Es2Config> stacks = {
      Es2Config::baseline(), Es2Config::pi(), Es2Config::pi_h(),
      Es2Config::pi_h_r()};
  for (const Es2Config& config : stacks) {
    ChaosStreamOptions co;
    co.stream = short_stream(config, /*vm_sends=*/false);
    co.faults.link_loss = 0.01;
    co.faults.kick_loss = 0.002;
    co.faults.worker_stall_prob = 0.01;
    const ChaosStreamResult r = run_chaos_stream(co, config.name());
    EXPECT_EQ(r.report.status, ScenarioStatus::kOk) << config.name();
    EXPECT_GT(r.stream.throughput_mbps, 0.0) << config.name();
    EXPECT_GT(r.stream.link_dropped, 0) << config.name();
    EXPECT_EQ(r.audit_violations, 0) << config.name();
  }
}

TEST(ChaosStream, LossTriggersFastRetransmitRecovery) {
  ChaosStreamOptions co;
  co.stream = short_stream(Es2Config::pi(), /*vm_sends=*/false);
  co.faults.link_loss = 0.02;
  const ChaosStreamResult r = run_chaos_stream(co, "fast-rtx");
  EXPECT_EQ(r.report.status, ScenarioStatus::kOk);
  EXPECT_GT(r.fast_retransmits, 0);
  EXPECT_GT(r.stream.throughput_mbps, 0.0);
}

TEST(ChaosStream, TxWatchdogRecoversSwallowedKicks) {
  ChaosStreamOptions co;
  co.stream = short_stream(Es2Config::pi(), /*vm_sends=*/true);
  co.faults.kick_loss = 0.5;
  co.tx_watchdog = true;
  const ChaosStreamResult r = run_chaos_stream(co, "wd-rekick");
  EXPECT_EQ(r.report.status, ScenarioStatus::kOk);
  EXPECT_GT(r.faults.kicks_dropped, 0);
  EXPECT_GT(r.tx_watchdog_kicks, 0);
  EXPECT_GT(r.stream.throughput_mbps, 0.0);
}

TEST(ChaosStream, MissedMsiRecoveredByWatchdogNapiPoll) {
  // Dropping MSIs wedges the RX path under EVENT_IDX suppression (a
  // stale used_event means later completions never re-raise the
  // interrupt); the guest watchdog's missed-interrupt NAPI poll is the
  // recovery. Peer->VM so the lost interrupts are RX completions.
  ChaosStreamOptions co;
  co.stream = short_stream(Es2Config::pi(), /*vm_sends=*/false);
  co.faults.msi_loss = 0.2;
  co.tx_watchdog = true;
  co.budget.max_sim_time = sec(2);
  const ChaosStreamResult r = run_chaos_stream(co, "msi-recover");
  EXPECT_EQ(r.report.status, ScenarioStatus::kOk);
  EXPECT_GT(r.faults.msis_dropped, 0);
  EXPECT_GT(r.rx_watchdog_polls, 0);
  EXPECT_GT(r.stream.throughput_mbps, 0.0);
}

TEST(ChaosStream, UnrecoverableWedgeIsCaughtByTheWatchdog) {
  ChaosStreamOptions co;
  co.stream = short_stream(Es2Config::pi(), /*vm_sends=*/true);
  co.faults.kick_loss = 1.0;  // every kick swallowed
  co.tx_watchdog = false;     // and nobody re-kicks
  co.budget.progress_window = msec(10);
  co.budget.stall_windows = 4;
  co.budget.max_sim_time = sec(2);
  const ChaosStreamResult r = run_chaos_stream(co, "wedge");
  EXPECT_EQ(r.report.status, ScenarioStatus::kNoProgress);
  EXPECT_NE(r.report.to_line().find("WATCHDOG wedge"), std::string::npos);
  EXPECT_EQ(r.stream.throughput_mbps, 0.0);
}

TEST(ChaosStream, SpuriousInterruptsAreAbsorbed) {
  ChaosStreamOptions co;
  co.stream = short_stream(Es2Config::pi(), /*vm_sends=*/true);
  co.faults.spurious_irq_period = usec(200);
  const ChaosStreamResult r = run_chaos_stream(co, "spurious");
  EXPECT_EQ(r.report.status, ScenarioStatus::kOk);
  EXPECT_GT(r.faults.spurious_irqs, 0);
  EXPECT_GT(r.stream.throughput_mbps, 0.0);
  EXPECT_EQ(r.audit_violations, 0);
}

TEST(ChaosStream, SameSeedSamePlanIsDeterministic) {
  ChaosStreamOptions co;
  co.stream = short_stream(Es2Config::pi_h(), /*vm_sends=*/false);
  co.faults.link_loss = 0.01;
  co.faults.kick_delay_prob = 0.2;
  const ChaosStreamResult a = run_chaos_stream(co, "det");
  const ChaosStreamResult b = run_chaos_stream(co, "det");
  EXPECT_DOUBLE_EQ(a.stream.throughput_mbps, b.stream.throughput_mbps);
  EXPECT_EQ(a.stream.link_dropped, b.stream.link_dropped);
  EXPECT_EQ(a.faults.kicks_delayed, b.faults.kicks_delayed);
  EXPECT_EQ(a.fast_retransmits, b.fast_retransmits);
}

}  // namespace
}  // namespace es2
