// Unit tests for statistics primitives.
#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/meters.h"

namespace es2 {
namespace {

TEST(Histogram, EmptyBehaviour) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.summary(), "(empty)");
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
  EXPECT_EQ(h.p50(), 42);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, QuantilesOfUniformRange) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i);
  // Log buckets bound relative error to ~1/32.
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.p90()), 9000.0, 9000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900.0, 9900.0 * 0.05);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10000);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(Histogram, RecordNWeights) {
  Histogram h;
  h.record_n(10, 99);
  h.record_n(1000000, 1);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.p50(), 10);
  EXPECT_GT(h.quantile(0.999), 900000);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 1.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.record(std::int64_t{1} << 40);  // ~18 minutes in ns
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.p50(), std::int64_t{1} << 39);
}

TEST(RateMeter, ComputesRateOverWindow) {
  RateMeter m;
  m.start(0);
  for (int i = 0; i < 500; ++i) m.add();
  EXPECT_DOUBLE_EQ(m.rate(kSecond), 500.0);
  EXPECT_DOUBLE_EQ(m.rate(kSecond / 2), 1000.0);
}

TEST(RateMeter, WindowRestartExcludesHistory) {
  RateMeter m;
  m.start(0);
  m.add(1000);
  m.start(kSecond);
  m.add(10);
  EXPECT_DOUBLE_EQ(m.rate(2 * kSecond), 10.0);
  EXPECT_EQ(m.total(), 1010);
  EXPECT_EQ(m.in_window(), 10);
}

TEST(RateMeter, ZeroWindowIsZeroRate) {
  RateMeter m;
  m.start(100);
  m.add(5);
  EXPECT_DOUBLE_EQ(m.rate(100), 0.0);
}

TEST(TimeWeighted, AveragesPiecewiseConstant) {
  TimeWeighted g;
  g.set(0, 1.0);
  g.set(100, 3.0);   // value 1.0 held for 100
  EXPECT_DOUBLE_EQ(g.average(200), (1.0 * 100 + 3.0 * 100) / 200.0);
}

TEST(TimeWeighted, CurrentTracksLastSet) {
  TimeWeighted g;
  g.set(0, 7.5);
  EXPECT_DOUBLE_EQ(g.current(), 7.5);
}

TEST(SpanAccumulator, TigPercent) {
  SpanAccumulator s;
  s.add(700, true);
  s.add(300, false);
  EXPECT_DOUBLE_EQ(s.tig_percent(), 70.0);
  EXPECT_EQ(s.guest_time(), 700);
  EXPECT_EQ(s.host_time(), 300);
}

TEST(SpanAccumulator, EmptyIsZero) {
  SpanAccumulator s;
  EXPECT_DOUBLE_EQ(s.tig_percent(), 0.0);
}

TEST(SpanAccumulator, IgnoresNonPositiveSpans) {
  SpanAccumulator s;
  s.add(0, true);
  s.add(-5, false);
  EXPECT_EQ(s.total(), 0);
}

}  // namespace
}  // namespace es2
