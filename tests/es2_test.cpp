// Unit tests for the ES2 core: configuration, the vCPU status tracker, and
// the intelligent interrupt redirection policies.
#include <gtest/gtest.h>

#include "es2/es2.h"
#include "harness/testbed.h"

namespace es2 {
namespace {

TEST(Es2Config, NamesMatchPaperStacks) {
  EXPECT_EQ(Es2Config::baseline().name(), "Baseline");
  EXPECT_EQ(Es2Config::pi().name(), "PI");
  EXPECT_EQ(Es2Config::pi_h().name(), "PI+H");
  EXPECT_EQ(Es2Config::pi_h_r().name(), "PI+H+R");
}

TEST(Es2Config, IrqModeFollowsPiFlag) {
  EXPECT_EQ(Es2Config::baseline().irq_mode(), InterruptVirtMode::kEmulatedLapic);
  EXPECT_EQ(Es2Config::pi().irq_mode(), InterruptVirtMode::kPostedInterrupt);
}

TEST(Es2Config, All4Progression) {
  const Es2Config* all = Es2Config::all4();
  EXPECT_FALSE(all[0].posted_interrupts);
  EXPECT_TRUE(all[1].posted_interrupts && !all[1].hybrid_io);
  EXPECT_TRUE(all[2].hybrid_io && !all[2].redirection);
  EXPECT_TRUE(all[3].redirection);
}

/// Builds a 2-VM x 2-vCPU stacked world where vCPU online state is easy to
/// drive: both VMs' vCPU j pin to core j.
struct TrackerWorld {
  TrackerWorld() {
    TestbedOptions o;
    o.config = Es2Config::pi_h_r();
    o.num_vms = 2;
    o.vcpus_per_vm = 2;
    o.stack_vms = true;
    o.host_cores = 6;
    o.vhost_core = 4;
    tb = std::make_unique<Testbed>(std::move(o));
  }
  std::unique_ptr<Testbed> tb;
};

TEST(Tracker, StartsAllOffline) {
  TrackerWorld w;
  auto& tracker = w.tb->es2().redirector()->tracker(w.tb->tested_vm());
  EXPECT_TRUE(tracker.online().empty());
  ASSERT_EQ(tracker.offline().size(), 2u);
  EXPECT_EQ(tracker.offline().front(), 0);
}

TEST(Tracker, TracksOnlineAfterStart) {
  TrackerWorld w;
  w.tb->start();
  w.tb->sim().run_for(msec(50));
  auto& tracker = w.tb->es2().redirector()->tracker(w.tb->tested_vm());
  // With 2 VMs stacking 2 cores, each VM averages one online vCPU.
  EXPECT_GE(tracker.online().size() + tracker.offline().size(), 2u);
  EXPECT_EQ(tracker.online().size() + tracker.offline().size(), 2u);
  EXPECT_GT(tracker.transitions(), 10);
}

TEST(Tracker, OfflineListOrderedByDescheduleTime) {
  TrackerWorld w;
  w.tb->start();
  w.tb->sim().run_for(sec(1));
  auto& tracker = w.tb->es2().redirector()->tracker(w.tb->tested_vm());
  // Run until both vCPUs are offline at the same moment, then the head
  // must be the one descheduled first. We verify the invariant
  // structurally: offline list has no duplicates and unions to all vcpus.
  std::vector<bool> seen(2, false);
  for (const int v : tracker.offline()) {
    EXPECT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
  for (const int v : tracker.online()) {
    EXPECT_FALSE(seen[static_cast<size_t>(v)]);
    seen[static_cast<size_t>(v)] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1]);
}

TEST(Tracker, CountsInterruptsPerVcpu) {
  TrackerWorld w;
  auto& tracker = w.tb->es2().redirector()->tracker(w.tb->tested_vm());
  tracker.count_interrupt(1);
  tracker.count_interrupt(1);
  tracker.count_interrupt(0);
  EXPECT_EQ(tracker.interrupts(0), 1);
  EXPECT_EQ(tracker.interrupts(1), 2);
}

TEST(Tracker, StickyClearsOnDeschedule) {
  TrackerWorld w;
  w.tb->start();
  w.tb->sim().run_for(msec(20));
  auto& tracker = w.tb->es2().redirector()->tracker(w.tb->tested_vm());
  if (!tracker.online().empty()) {
    const int target = tracker.online().front();
    tracker.set_sticky_target(target);
    // Run until that vCPU is descheduled at least once.
    w.tb->sim().run_for(msec(50));
    if (!tracker.is_online(target)) {
      EXPECT_EQ(tracker.sticky_target(), -1);
    }
  }
}

TEST(Redirector, UpVmKeepsAffinity) {
  Simulator sim(1);
  KvmHost host(sim, 2);
  InterruptRedirector redirector(host, RedirectPolicy::kPaper);
  Vm& vm = host.create_vm("up", {0}, InterruptVirtMode::kPostedInterrupt);
  redirector.track(vm);
  const int dest = redirector.select_target(
      vm, {0x40, 0, DeliveryMode::kLowestPriority});
  EXPECT_EQ(dest, 0);
}

TEST(Redirector, PrefersOnlineOverOfflinePrediction) {
  TrackerWorld w;
  w.tb->start();
  w.tb->sim().run_for(msec(30));
  auto* red = w.tb->es2().redirector();
  auto& tracker = red->tracker(w.tb->tested_vm());
  const MsiMessage msi{0x40, 0, DeliveryMode::kLowestPriority};
  const int dest = red->select_target(w.tb->tested_vm(), msi);
  if (!tracker.online().empty()) {
    EXPECT_TRUE(tracker.is_online(dest));
  } else {
    EXPECT_EQ(dest, tracker.offline().front());
  }
}

TEST(Redirector, StickyTargetReused) {
  TrackerWorld w;
  w.tb->start();
  w.tb->sim().run_for(msec(30));
  auto* red = w.tb->es2().redirector();
  auto& tracker = red->tracker(w.tb->tested_vm());
  if (tracker.online().empty()) GTEST_SKIP() << "no online vCPU at probe";
  const MsiMessage msi{0x40, 0, DeliveryMode::kLowestPriority};
  const int first = red->select_target(w.tb->tested_vm(), msi);
  const int second = red->select_target(w.tb->tested_vm(), msi);
  EXPECT_EQ(first, second);
  EXPECT_GE(red->via_sticky(), 1);
}

TEST(Redirector, LightestLoadBalancesWithoutSticky) {
  Simulator sim(1);
  KvmHost host(sim, 4);
  InterruptRedirector redirector(host, RedirectPolicy::kNoSticky);
  Vm& vm = host.create_vm("smp", {0, 1}, InterruptVirtMode::kPostedInterrupt);
  redirector.track(vm);
  auto& tracker = redirector.tracker(vm);
  // Make both vCPUs appear online via direct counting of a fabricated
  // state: use the real scheduler by starting the VM on dedicated cores.
  class Idle final : public GuestCpu {
   public:
    explicit Idle(Vm& vm) : vm_(vm) { vm.set_guest(this); }
    void run(int i) override {
      vm_.vcpu(i).guest_exec(1150000, [this, i] { run(i); });
    }
    void take_interrupt(int i, Vector) override {
      Vcpu& v = vm_.vcpu(i);
      v.guest_exec(1000, [&v] { v.guest_eoi([&v] { v.irq_done(); }); });
    }
    Vm& vm_;
  } guest(vm);
  vm.set_timer_hz(0);
  vm.start();
  sim.run_for(msec(5));
  ASSERT_EQ(tracker.online().size(), 2u);  // dedicated cores: both online
  const MsiMessage msi{0x40, 0, DeliveryMode::kLowestPriority};
  const int a = redirector.select_target(vm, msi);
  const int b = redirector.select_target(vm, msi);
  const int c = redirector.select_target(vm, msi);
  // Least-loaded alternates: a then the other, then back.
  EXPECT_NE(a, b);
  EXPECT_EQ(c, a);
}

TEST(Redirector, RoundRobinPolicyRotates) {
  Simulator sim(1);
  KvmHost host(sim, 4);
  InterruptRedirector redirector(host, RedirectPolicy::kRoundRobin);
  Vm& vm = host.create_vm("smp", {0, 1}, InterruptVirtMode::kPostedInterrupt);
  redirector.track(vm);
  class Idle final : public GuestCpu {
   public:
    explicit Idle(Vm& vm) : vm_(vm) { vm.set_guest(this); }
    void run(int i) override {
      vm_.vcpu(i).guest_exec(1150000, [this, i] { run(i); });
    }
    void take_interrupt(int i, Vector) override {
      Vcpu& v = vm_.vcpu(i);
      v.guest_exec(1000, [&v] { v.guest_eoi([&v] { v.irq_done(); }); });
    }
    Vm& vm_;
  } guest(vm);
  vm.set_timer_hz(0);
  vm.start();
  sim.run_for(msec(5));
  const MsiMessage msi{0x40, 0, DeliveryMode::kLowestPriority};
  const int a = redirector.select_target(vm, msi);
  const int b = redirector.select_target(vm, msi);
  EXPECT_NE(a, b);
}

TEST(Es2System, EnableForChecksIrqModeMatch) {
  TestbedOptions o;
  o.config = Es2Config::pi_h_r();
  Testbed tb(std::move(o));
  // Construction already called enable_for successfully.
  EXPECT_NE(tb.es2().redirector(), nullptr);
  EXPECT_EQ(tb.backend().poll_quota(), tb.options().config.poll_quota);
}

TEST(Es2System, BaselineHasNoRedirectorAndNoQuota) {
  TestbedOptions o;
  o.config = Es2Config::baseline();
  Testbed tb(std::move(o));
  EXPECT_EQ(tb.es2().redirector(), nullptr);
  EXPECT_EQ(tb.backend().poll_quota(), 0);
}

TEST(HybridIoHandling, AttachDetach) {
  TestbedOptions o;
  o.config = Es2Config::pi();
  Testbed tb(std::move(o));
  HybridIoHandling::attach(tb.backend(), HybridIoHandling::kQuotaUdp);
  EXPECT_EQ(tb.backend().poll_quota(), 8);
  HybridIoHandling::detach(tb.backend());
  EXPECT_EQ(tb.backend().poll_quota(), 0);
}

}  // namespace
}  // namespace es2
