// Contract tests for the zero-allocation event core: ordering across the
// calendar layers (near heap / wheel / overflow heap), generation-handle
// cancellation semantics, handle-outlives-queue safety, determinism under
// interleaved cancels, inline-callback storage, and the zero-steady-state-
// allocation guarantee (this binary links es2_alloc_hook).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "base/alloc_hook.h"
#include "base/rng.h"
#include "sim/simulator.h"

namespace es2 {
namespace {

using detail::kInlineCallbackCapacity;

// ---------------------------------------------------------------------------
// Inline-storage budget: the capture patterns used across the models must
// fit the pooled record's inline buffer (this is what keeps scheduling
// allocation-free). Representative shapes, checked at compile time.
// ---------------------------------------------------------------------------
struct ModelStandIn {
  void* a;
  void* b;
};
static_assert(sizeof(void*) <= kInlineCallbackCapacity,
              "[this] capture must fit inline");
static_assert(sizeof(ModelStandIn) + sizeof(std::int64_t) <=
                  kInlineCallbackCapacity,
              "[this, ptr, scalar] capture must fit inline");
static_assert(sizeof(std::function<void()>) <= kInlineCallbackCapacity,
              "a std::function copy must fit inline (vm timer ticks)");
static_assert(sizeof(std::shared_ptr<int>) + sizeof(void*) <=
                  kInlineCallbackCapacity,
              "[this, PacketPtr] capture must fit inline (link delivery)");

// ---------------------------------------------------------------------------
// Ordering across calendar layers
// ---------------------------------------------------------------------------

TEST(EventCore, OrderingAcrossNearWheelAndFarLayers) {
  // Times chosen to land in all three layers: same-bucket (near), within
  // the ~1ms wheel horizon, and far beyond it.
  Simulator sim;
  std::vector<SimTime> fired;
  const std::vector<SimTime> times = {
      0,       1,        2,          4095,     4096,      5000,
      100000,  999999,   1048575,    1048576,  2000000,   50000000,
      sec(1),  sec(1) + 1, sec(2),   msec(3),  usec(7),   123456789};
  std::vector<SimTime> shuffled = times;
  Rng rng = Rng::stream(7, "shuffle");
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[rng.next_u64() % i]);
  }
  for (SimTime t : shuffled) {
    sim.at(t, [&fired, t] { fired.push_back(t); });
  }
  sim.run_to_completion();
  std::vector<SimTime> expect = times;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(fired, expect);
}

TEST(EventCore, SameInstantFifoAcrossLayerMigration) {
  // Events scheduled at the same far-future instant must fire in
  // scheduling order even after migrating far -> wheel -> near.
  Simulator sim;
  std::vector<int> order;
  const SimTime t = sec(3);  // far beyond the wheel horizon
  for (int i = 0; i < 100; ++i) {
    sim.at(t, [&order, i] { order.push_back(i); });
  }
  // Force the cursor to sweep through many buckets first.
  for (SimTime k = 0; k < sec(3); k += msec(50)) sim.at(k, [] {});
  sim.run_to_completion();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventCore, DeferRunsAfterQueuedSameInstantEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.at(usec(5), [&] {
    sim.defer([&] { order.push_back(3); });
  });
  sim.at(usec(5), [&] { order.push_back(1); });
  sim.at(usec(5), [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Cancellation semantics
// ---------------------------------------------------------------------------

TEST(EventCore, CancelThenFireAndDoubleCancelAreSafe) {
  Simulator sim;
  int fired = 0;
  EventHandle a = sim.at(usec(1), [&] { ++fired; });
  EventHandle b = sim.at(usec(1), [&] { ++fired; });
  EventHandle far = sim.at(sec(5), [&] { ++fired; });
  a.cancel();
  a.cancel();  // double cancel: no-op
  far.cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  EXPECT_FALSE(far.pending());
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
  b.cancel();  // cancel after fire: no-op
  EXPECT_FALSE(b.pending());
}

TEST(EventCore, CancelReclaimsSlotImmediately) {
  // A cancel-heavy workload must not grow the pool: the cancelled slot is
  // reused by the next schedule (the seed's lazy skim kept them queued).
  Simulator sim;
  const EventQueueStats& stats = sim.queue().stats();
  for (int i = 0; i < 100000; ++i) {
    EventHandle h = sim.at(sec(1), [] {});
    h.cancel();
  }
  EXPECT_EQ(sim.queue().size(), 0u);
  EXPECT_EQ(stats.cancelled, 100000u);
  EXPECT_EQ(stats.peak_live, 1u);
  EXPECT_EQ(stats.slabs_allocated, 1u);
}

TEST(EventCore, HeapCompactionDuringCancelStormKeepsStaleCountExact) {
  // Regression: cancel() used to run maybe_compact() BEFORE free_slot()
  // bumped the cancelled key's generation, so that key looked live,
  // survived the pass, and the stale counter reset to 0 — when the key
  // later surfaced, skim() underflowed the counter (Debug builds abort
  // on ES2_DCHECK(stale > 0); NDEBUG builds wrap the size_t). Cancelling
  // everything in a large batch makes the final skim walk exactly as
  // many dead keys as the counter recorded, so any miscount trips.
  Simulator sim;
  const EventQueueStats& stats = sim.queue().stats();
  for (int round = 0; round < 4; ++round) {
    std::vector<EventHandle> near_events;
    std::vector<EventHandle> far_events;
    for (int i = 0; i < 300; ++i) {
      near_events.push_back(sim.after(1, [] {}));      // near heap
      far_events.push_back(sim.after(sec(3), [] {}));  // far overflow heap
    }
    for (EventHandle& h : near_events) h.cancel();
    for (EventHandle& h : far_events) h.cancel();
    sim.after(2, [] {});  // forces a skim through the cancelled keys
    sim.run_for(usec(1));
  }
  EXPECT_GT(stats.heap_compactions, 0u)
      << "storm did not reach the compaction threshold; bump the counts";
  sim.run_to_completion();
  EXPECT_EQ(sim.queue().size(), 0u);
}

TEST(EventCore, ThrowingCallbackStillReclaimsSlotAndDestroysClosure) {
  // A callback that throws must still have its closure destroyed and its
  // slot returned to the free list (the seed destroyed its std::function
  // during unwind); the queue stays usable afterwards.
  Simulator sim;
  std::shared_ptr<int> payload = std::make_shared<int>(7);
  sim.at(usec(1), [keep = payload] {
    (void)*keep;
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(sim.run_to_completion(), std::runtime_error);
  EXPECT_EQ(payload.use_count(), 1);  // closure destroyed during unwind
  EXPECT_EQ(sim.queue().size(), 0u);
  int fired = 0;
  sim.at(usec(2), [&] { ++fired; });  // reuses the reclaimed slot
  EXPECT_EQ(sim.queue().stats().slabs_allocated, 1u);
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
}

TEST(EventCore, SlotReuseDoesNotConfuseStaleHandle) {
  Simulator sim;
  bool first_fired = false;
  bool second_fired = false;
  EventHandle h1 = sim.at(usec(1), [&] { first_fired = true; });
  h1.cancel();
  // The freed slot is immediately reused by the next schedule.
  EventHandle h2 = sim.at(usec(1), [&] { second_fired = true; });
  EXPECT_FALSE(h1.pending());  // stale generation: does not see h2's event
  EXPECT_TRUE(h2.pending());
  h1.cancel();  // must NOT cancel h2's event
  EXPECT_TRUE(h2.pending());
  sim.run_to_completion();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

TEST(EventCore, SelfCancelDuringCallbackIsNoop) {
  Simulator sim;
  int fired = 0;
  std::shared_ptr<EventHandle> h = std::make_shared<EventHandle>();
  *h = sim.at(usec(1), [&fired, h] {
    ++fired;
    EXPECT_FALSE(h->pending());  // already consumed, like the seed
    h->cancel();                 // no-op
  });
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
}

TEST(EventCore, HandleOutlivesQueue) {
  EventHandle survivor;
  {
    Simulator sim;
    survivor = sim.at(sec(1), [] {});
    EXPECT_TRUE(survivor.pending());
  }
  // The queue is gone; the pooled core lives on through the handle.
  EXPECT_FALSE(survivor.pending());
  survivor.cancel();  // must be safe, not a use-after-free
}

TEST(EventCore, PendingCallbackCapturesAreDestroyedWithQueue) {
  std::shared_ptr<int> payload = std::make_shared<int>(42);
  {
    Simulator sim;
    sim.at(sec(1), [keep = payload] { (void)*keep; });
    EXPECT_EQ(payload.use_count(), 2);
  }
  EXPECT_EQ(payload.use_count(), 1);  // queue destruction ran the dtor
}

// ---------------------------------------------------------------------------
// Boxed fallback for oversized captures (via EventQueue directly; the
// Simulator static_asserts the inline budget for model call sites)
// ---------------------------------------------------------------------------

TEST(EventCore, OversizedCallbackFallsBackToBox) {
  Simulator sim;
  std::array<std::int64_t, 16> big{};  // 128 bytes > inline capacity
  big[7] = 99;
  std::int64_t seen = 0;
  sim.queue().schedule(usec(1), [big, &seen] { seen = big[7]; });
  EXPECT_EQ(sim.queue().stats().boxed_callbacks, 1u);
  sim.run_to_completion();
  EXPECT_EQ(seen, 99);
}

// ---------------------------------------------------------------------------
// Determinism: identical firing order across two runs with interleaved
// cancels driven by a seeded RNG.
// ---------------------------------------------------------------------------

std::vector<std::pair<SimTime, int>> run_cancel_storm(std::uint64_t seed) {
  Simulator sim(seed);
  Rng rng = sim.make_rng("storm");
  std::vector<std::pair<SimTime, int>> fired;
  std::vector<EventHandle> handles;
  int id = 0;
  std::function<void()> churn = [&] {
    // Each tick: schedule a few events across all layers, cancel a few
    // random outstanding ones.
    for (int k = 0; k < 4; ++k) {
      const SimTime when =
          sim.now() + static_cast<SimDuration>(rng.next_u64() % msec(20));
      const int my_id = id++;
      handles.push_back(
          sim.at(when, [&fired, &sim, my_id] {
            fired.emplace_back(sim.now(), my_id);
          }));
    }
    for (int k = 0; k < 2 && !handles.empty(); ++k) {
      const size_t victim = rng.next_u64() % handles.size();
      handles[victim].cancel();
      handles.erase(handles.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    if (sim.now() < msec(50)) sim.after(usec(37), churn);
  };
  sim.after(0, churn);
  sim.run_until(msec(80));
  return fired;
}

TEST(EventCore, DeterministicOrderAcrossRunsWithInterleavedCancels) {
  const auto run1 = run_cancel_storm(1234);
  const auto run2 = run_cancel_storm(1234);
  ASSERT_FALSE(run1.empty());
  EXPECT_EQ(run1, run2);
}

// ---------------------------------------------------------------------------
// Randomized differential test: the calendar queue against a trivially
// correct reference model (stable sort by (when, seq)).
// ---------------------------------------------------------------------------

TEST(EventCore, MatchesReferenceModelUnderRandomOps) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim(seed);
    Rng rng = sim.make_rng("fuzz");
    struct Ref {
      SimTime when;
      int id;
      bool cancelled = false;
    };
    std::vector<Ref> ref;
    std::vector<EventHandle> handles;
    std::vector<int> fired;
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t op = rng.next_u64() % 100;
      if (op < 70 || ref.empty()) {
        // Mix of near (same µs), wheel (< 1ms) and far (up to 2s) times.
        const std::uint64_t r = rng.next_u64();
        SimDuration d;
        if (r % 3 == 0) {
          d = static_cast<SimDuration>(r % 1000);
        } else if (r % 3 == 1) {
          d = static_cast<SimDuration>(r % msec(1));
        } else {
          d = static_cast<SimDuration>(r % sec(2));
        }
        const int my_id = static_cast<int>(ref.size());
        ref.push_back(Ref{static_cast<SimTime>(d), my_id});
        handles.push_back(sim.at(d, [&fired, my_id] {
          fired.push_back(my_id);
        }));
      } else {
        const size_t victim = rng.next_u64() % ref.size();
        if (!ref[victim].cancelled) {
          ref[victim].cancelled = true;
          handles[static_cast<size_t>(ref[victim].id)].cancel();
        }
      }
    }
    sim.run_to_completion();
    // Reference: stable sort the live events by (when, insertion order).
    std::vector<Ref> expect_refs;
    for (const Ref& r : ref) {
      if (!r.cancelled) expect_refs.push_back(r);
    }
    std::stable_sort(expect_refs.begin(), expect_refs.end(),
                     [](const Ref& a, const Ref& b) { return a.when < b.when; });
    std::vector<int> expect;
    for (const Ref& r : expect_refs) expect.push_back(r.id);
    EXPECT_EQ(fired, expect) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Perf counters
// ---------------------------------------------------------------------------

TEST(EventCore, StatsCountersTrackScheduleCancelFireAndLayers) {
  Simulator sim;
  const EventQueueStats& stats = sim.queue().stats();
  sim.at(0, [] {});                      // near (bucket 0)
  sim.at(usec(100), [] {});              // wheel
  EventHandle far = sim.at(sec(4), [] {});  // far heap
  EXPECT_EQ(stats.scheduled, 3u);
  EXPECT_EQ(stats.near_hits, 1u);
  EXPECT_EQ(stats.wheel_hits, 1u);
  EXPECT_EQ(stats.far_hits, 1u);
  EXPECT_EQ(stats.peak_live, 3u);
  far.cancel();
  EXPECT_EQ(stats.cancelled, 1u);
  sim.run_to_completion();
  EXPECT_EQ(stats.fired, 2u);
  EXPECT_EQ(stats.boxed_callbacks, 0u);
}

// ---------------------------------------------------------------------------
// Zero steady-state allocations (this binary links es2_alloc_hook)
// ---------------------------------------------------------------------------

TEST(EventCore, SteadyStateScheduleCancelFireAllocatesNothing) {
  Simulator sim;
  std::vector<EventHandle> handles;
  handles.reserve(1024);
  // One churn round exercises every layer: same-instant defers, wheel
  // inserts, far-heap inserts, cancels of each, fires of the rest.
  auto churn = [&] {
    for (int i = 0; i < 1000; ++i) {
      sim.after(static_cast<SimDuration>(i % 200) * usec(1) + 1, [] {});
      handles.push_back(sim.after(sec(2), [] {}));
    }
    for (EventHandle& h : handles) h.cancel();
    handles.clear();  // keeps capacity
    sim.run_for(msec(1));
  };

  // Warm up: grow the slab pool, heaps, wheel lists and handle vector.
  for (int round = 0; round < 4; ++round) churn();

  test::AllocationCounter counter;
  for (int round = 0; round < 8; ++round) churn();
  sim.run_to_completion();
  EXPECT_EQ(counter.delta(), 0)
      << "steady-state schedule/cancel/fire must not allocate";
  EXPECT_EQ(sim.queue().stats().boxed_callbacks, 0u);
  EXPECT_GT(sim.queue().stats().fired, 0u);
}

}  // namespace
}  // namespace es2
