// Divergence bisector: where did two same-seed runs split, and whose
// fault was it?
//
// Input: two es2-hash-v1 JSON files exported with `--hash-epochs=<path>`
// (any bench) or harvested via `Testbed::hash_log()`. Each records, per
// epoch of simulated time, an FNV digest of every registered component
// plus the folded world digest. Two deterministic same-seed runs must
// produce identical series; when they do not, the first divergent epoch
// bounds the bug in time and the component column(s) whose digest split
// name the guilty subsystem — "cfs diverged at epoch 31 (t=310ms)" is a
// far smaller haystack than "the CSV differs".
//
// Exit codes: 0 = identical series, 1 = divergence found, 2 = usage or
// incomparable inputs (different epoch period / component sets).
//
// Usage: divergence_bisect A.json B.json [--quiet]
#include <cstdio>
#include <cstring>
#include <string>

#include "snapshot/state_hash.h"

using namespace es2;

namespace {

bool slurp(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool load_series(const char* path, HashSeries* out) {
  std::string text;
  if (!slurp(path, &text)) {
    std::fprintf(stderr, "divergence_bisect: cannot read %s\n", path);
    return false;
  }
  std::string error;
  if (!HashSeries::parse(text, out, &error)) {
    std::fprintf(stderr, "divergence_bisect: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path_a = nullptr;
  const char* path_b = nullptr;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (path_a == nullptr) {
      path_a = argv[i];
    } else if (path_b == nullptr) {
      path_b = argv[i];
    } else {
      path_a = nullptr;  // too many operands
      break;
    }
  }
  if (path_a == nullptr || path_b == nullptr) {
    std::fprintf(stderr,
                 "usage: divergence_bisect A.json B.json [--quiet]\n"
                 "  A/B: es2-hash-v1 epoch-hash series "
                 "(bench --hash-epochs=<path>)\n");
    return 2;
  }

  HashSeries a, b;
  if (!load_series(path_a, &a) || !load_series(path_b, &b)) return 2;

  const Divergence d = find_divergence(a, b);
  if (d.epoch == -2) {
    std::fprintf(stderr, "divergence_bisect: incomparable series: %s\n",
                 d.detail.c_str());
    return 2;
  }
  if (d.epoch == -1) {
    if (!quiet) {
      std::printf("identical: %s (%zu epochs x %zu components)\n",
                  d.detail.c_str(), a.entries.size(),
                  a.component_names.size());
    }
    return 0;
  }

  std::printf("DIVERGENCE at epoch %lld (t=%.3f ms): %s\n",
              static_cast<long long>(d.epoch),
              static_cast<double>(d.t) / 1e6, d.detail.c_str());
  if (!quiet) {
    for (const std::string& name : d.components) {
      std::printf("  component: %s\n", name.c_str());
    }
    if (d.epoch > 0) {
      std::printf("  last agreeing epoch: %lld (t=%.3f ms)\n",
                  static_cast<long long>(d.epoch - 1),
                  static_cast<double>(
                      a.entries[static_cast<std::size_t>(d.epoch - 1)].t) /
                      1e6);
    }
  }
  return 1;
}
