// Latency-blame CLI: who owns each nanosecond of the virtio event path?
//
// Three modes, picked by the inputs:
//
//  * `latency_blame trace.bin` — read a raw ES2T binary trace (exported by
//    any bench via `--profile=<path>`, written next to it as
//    `<path>.trace.bin`, or by `to_binary`), run the critical-path
//    analyzer, and print the markdown latency-budget table plus the
//    worst-journey ledger. `--json=<path>` additionally writes the
//    es2-blame-v1 report.
//  * `latency_blame blame.json` — re-render an existing es2-blame-v1
//    report as the same markdown table (for eyeballing a CI artifact).
//  * `latency_blame --diff a.json b.json` — diff two es2-blame-v1 reports
//    and name the component whose share of the journey total grew the
//    most: the answer to "which stage regressed between these runs?".
//
// Exit codes: 0 = ok (diff mode: no component regressed by more than
// --threshold), 1 = diff found a regression past the threshold, 2 = usage
// or unreadable/malformed input.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/json.h"
#include "profile/blame.h"
#include "profile/blame_export.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace es2;

namespace {

bool slurp(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool load_summary(const char* path, BlameSummary* out) {
  std::string text;
  if (!slurp(path, &text)) {
    std::fprintf(stderr, "latency_blame: cannot read %s\n", path);
    return false;
  }
  std::string error;
  if (!blame_summary_from_json(text, out, &error)) {
    std::fprintf(stderr, "latency_blame: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: latency_blame <trace.bin> [--json=<out.json>] "
               "[--top=N] [--k=F]\n"
               "       latency_blame <blame.json>\n"
               "       latency_blame --diff <a.json> <b.json> "
               "[--threshold=F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> inputs;
  std::string json_out;
  bool diff = false;
  double threshold = 0.05;
  BlameOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diff") == 0) {
      diff = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_out = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--top=", 6) == 0) {
      options.ledger_top_n =
          static_cast<int>(std::strtol(argv[i] + 6, nullptr, 10));
    } else if (std::strncmp(argv[i], "--k=", 4) == 0) {
      options.ledger_k = std::strtod(argv[i] + 4, nullptr);
    } else if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[i] + 12, nullptr);
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      inputs.push_back(argv[i]);
    }
  }

  if (diff) {
    if (inputs.size() != 2) return usage();
    BlameSummary a, b;
    if (!load_summary(inputs[0], &a) || !load_summary(inputs[1], &b)) return 2;
    const BlameDiff d = diff_blame(a, b);
    std::printf("%s", render_blame_diff_markdown(d).c_str());
    if (!d.regressed.empty() && d.regressed_delta > threshold) {
      std::printf("REGRESSED: %s (+%.1f%% of journey total)\n",
                  d.regressed.c_str(), d.regressed_delta * 100.0);
      return 1;
    }
    std::printf("no component grew by more than %.1f%% of the total\n",
                threshold * 100.0);
    return 0;
  }

  if (inputs.size() != 1) return usage();
  std::string data;
  if (!slurp(inputs[0], &data)) {
    std::fprintf(stderr, "latency_blame: cannot read %s\n", inputs[0]);
    return 2;
  }

  std::vector<TraceRecord> records;
  if (read_binary(data, &records)) {
    const BlameBreakdown blame = analyze_blame(records, options);
    if (blame.journeys == 0) {
      std::fprintf(stderr,
                   "latency_blame: %s holds no journeys (was the run traced "
                   "with -DES2_TRACE=ON?)\n",
                   inputs[0]);
      return 2;
    }
    std::printf("%s", render_blame_markdown(blame_summary(blame)).c_str());
    if (!json_out.empty()) {
      if (!write_blame_file(json_out, blame)) {
        std::fprintf(stderr, "latency_blame: cannot write %s\n",
                     json_out.c_str());
        return 2;
      }
      std::printf("[es2-blame-v1 report written to %s]\n", json_out.c_str());
    }
    return 0;
  }

  // Not an ES2T binary: try an existing es2-blame-v1 report.
  BlameSummary s;
  if (!load_summary(inputs[0], &s)) return 2;
  std::printf("%s", render_blame_markdown(s).c_str());
  return 0;
}
